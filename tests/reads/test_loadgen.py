"""Unit tests for the open-loop generator's building blocks: zipfian key
skew, log-spaced latency histograms, and the open-loop stats object."""

import math

from repro.sim.rng import SeededRng
from repro.workloads.loadgen import (
    OpenLoopStats,
    ZipfianGenerator,
    latency_histogram,
)


def draw_many(theta, n=20, count=4000, seed=42):
    zipf = ZipfianGenerator(n, theta=theta)
    rng = SeededRng(seed)
    counts = [0] * n
    for _ in range(count):
        index = zipf.draw(rng)
        assert 0 <= index < n
        counts[index] += 1
    return counts


def test_zipfian_skews_toward_low_ranks():
    counts = draw_many(theta=0.99)
    # YCSB-default skew: rank 0 dominates, the tail is thin
    assert counts[0] > counts[-1] * 3
    assert counts[0] > max(counts[1:])
    assert counts[0] / sum(counts) > 0.2


def test_zipfian_theta_zero_is_uniform():
    counts = draw_many(theta=0.0)
    expected = sum(counts) / len(counts)
    assert max(counts) < expected * 1.5
    assert min(counts) > expected * 0.5


def test_zipfian_is_deterministic_per_seed():
    zipf = ZipfianGenerator(64, theta=0.99)
    draws_a = [zipf.draw(SeededRng(7).fork("k")) for _ in range(1)]
    sequence = lambda seed: [  # noqa: E731
        zipf.draw(rng) for rng in [SeededRng(seed)] for _ in range(50)
    ]
    assert sequence(7) == sequence(7)
    assert sequence(7) != sequence(8)
    assert draws_a == draws_a


def test_zipfian_single_key_degenerates():
    zipf = ZipfianGenerator(1)
    rng = SeededRng(1)
    assert all(zipf.draw(rng) == 0 for _ in range(20))


def test_latency_histogram_covers_all_samples():
    latencies = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    hist = latency_histogram(latencies, bins=4)
    assert len(hist) == 4
    assert sum(count for _edge, count in hist) == len(latencies)
    edges = [edge for edge, _count in hist]
    assert edges == sorted(edges)
    assert math.isclose(edges[-1], 32.0)
    assert latency_histogram([]) == []
    assert latency_histogram([3.0, 3.0]) == [(3.0, 2)]


def test_open_loop_stats_accounting():
    stats = OpenLoopStats()
    assert stats.drained  # vacuously: nothing issued
    stats.issued_reads = 3
    stats.issued_writes = 1
    assert not stats.drained
    stats.reads_ok = 2
    stats.reads_failed = 1
    stats.writes_committed = 1
    assert stats.drained
    assert stats.issued == 4
    assert stats.completed == 4
    stats.read_latencies.extend([1.0, 2.0, 3.0])
    assert stats.read_mean_latency == 2.0
    assert stats.read_p99_latency == 3.0
    assert stats.max_observed_staleness == 0.0
    stats.read_staleness.append(4.5)
    assert stats.max_observed_staleness == 4.5
