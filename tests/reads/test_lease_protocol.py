"""End-to-end lease protocol tests: a leased primary serves linearizable
local reads, a disabled config falls back to the call path, and -- the
safety core -- an old primary partitioned mid-lease stops serving before
the new primary can commit, with the stale_lease monitor armed
throughout."""

from repro.config import ProtocolConfig, ReadConfig, TraceConfig
from repro.harness.common import build_kv_system
from repro.workloads.loadgen import run_retry_loop


def reads_config(**kwargs):
    return ProtocolConfig(reads=ReadConfig(enabled=True, **kwargs))


def run_read(rt, driver, groupid, uid, max_time=3_000.0, **kwargs):
    out = {}
    driver.read(groupid, uid, **kwargs).add_done_callback(
        lambda future: out.setdefault("result", future.result())
    )
    deadline = rt.sim.now + max_time
    while "result" not in out and rt.sim.now < deadline:
        rt.run_for(10.0)
    assert "result" in out, "read never resolved"
    return out["result"]


def commit_write(rt, driver, key, value):
    stats = run_retry_loop(
        rt, driver, "clients", [("write", ("kv", key, value))]
    )
    deadline = rt.sim.now + 30_000.0
    while stats.committed < 1 and rt.sim.now < deadline:
        rt.run_for(100.0)
    assert stats.committed == 1, "write never committed"


def test_leased_primary_serves_linearizable_local_reads():
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=21, config=reads_config(), trace=TraceConfig()
    )
    rt.run_for(150.0)
    commit_write(rt, driver, spec.key(0), 11)
    result = run_read(rt, driver, "kv", spec.key(0))
    assert result.ok
    assert result.mode == "lease"
    assert result.value == 11
    assert result.staleness == 0.0
    assert rt.metrics.counters.get("lease_reads:kv", 0) >= 1
    kinds = {event.kind for event in rt.tracer.events()}
    assert "lease_grant" in kinds
    assert "lease_read" in kinds


def test_disabled_reads_reject_and_fall_back_to_the_call_path():
    rt, _kv, _clients, driver, spec = build_kv_system(seed=22)
    rt.run_for(150.0)
    commit_write(rt, driver, spec.key(1), 5)
    via_txn = run_read(
        rt, driver, "kv", spec.key(1),
        fallback=("clients", "read", ("kv", spec.key(1))),
    )
    assert via_txn.ok
    assert via_txn.mode == "txn"
    assert via_txn.value == 5
    without_fallback = run_read(rt, driver, "kv", spec.key(1))
    assert not without_fallback.ok
    assert without_fallback.mode == "none"


def test_partitioned_old_primary_stops_serving_before_new_commit():
    """The lease safety argument, exercised: partition the leased primary
    (with a client on its side), let the majority elect and activate a
    new primary, and commit a write.  The old primary may serve its
    client only while its lease lasts -- by commit time it must be
    rejecting -- and the armed stale_lease monitor would raise on any
    overlap."""
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=23, config=reads_config(), trace=TraceConfig()
    )
    stale_driver = rt.create_driver("stale-driver")
    rt.run_for(150.0)
    commit_write(rt, driver, spec.key(0), 1)
    first = run_read(rt, stale_driver, "kv", spec.key(0))
    assert first.ok and first.mode == "lease" and first.value == 1

    old = kv.active_primary()
    old_view = old.cur_view
    stale_side = {old.node.node_id, stale_driver.node.node_id}
    rt.faults.partition(stale_side, set(rt.nodes) - stale_side)

    # grants already held outlive the partition briefly: the old primary
    # keeps serving its own client, still linearizably (no newer view
    # can form without a grantor whose promise defers activation)
    during = run_read(rt, stale_driver, "kv", spec.key(0), retries=0)
    assert during.ok and during.mode == "lease" and during.value == 1

    base_changes = len(rt.ledger.view_changes_for("kv"))
    deadline = rt.sim.now + 10_000.0
    while (
        len(rt.ledger.view_changes_for("kv")) == base_changes
        and rt.sim.now < deadline
    ):
        rt.run_for(50.0)
    assert len(rt.ledger.view_changes_for("kv")) > base_changes, (
        "majority side never formed a new view"
    )
    commit_write(rt, driver, spec.key(0), 2)

    # ...by which time the old lease must have lapsed: grants cannot
    # have been renewed across the partition
    assert not old.reads.lease_valid(old_view)
    after = run_read(
        rt, stale_driver, "kv", spec.key(0), retries=1, max_time=2_000.0
    )
    assert not after.ok

    # the new primary's activation was deferred past the lease promises
    # its acceptors reported at formation
    assert rt.metrics.counters.get("lease_waits:kv", 0) >= 1
    kinds = {event.kind for event in rt.tracer.events()}
    assert "lease_wait" in kinds
    assert "lease_expire" in kinds

    rt.faults.heal()
    rt.run_for(400.0)
    healed = run_read(rt, stale_driver, "kv", spec.key(0))
    assert healed.ok and healed.value == 2
    rt.check_invariants(require_convergence=False)
