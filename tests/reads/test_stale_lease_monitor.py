"""The stale_lease monitor trips when a leased read is served under a
view older than one whose primary has already committed a write, and
stays quiet on every legitimate interleaving."""

import pytest

from repro.config import TraceConfig
from repro.sim.kernel import Simulator
from repro.trace import InvariantViolation, Tracer, build_monitors


def make_tracer():
    tracer = Tracer(Simulator(seed=1), TraceConfig())
    tracer.install_monitors(build_monitors(("stale_lease",)))
    return tracer


def commit(tracer, viewid, ts=5, group="kv", mid=0):
    tracer.emit("record_added", node=f"n{mid}", group=group, mid=mid,
                viewid=viewid, ts=ts, rtype="Committed", role="primary")


def lease_read(tracer, viewid, group="kv", mid=0):
    tracer.emit("lease_read", node=f"n{mid}", group=group, mid=mid,
                viewid=viewid, uid="key0")


def test_trips_on_read_under_superseded_view():
    tracer = make_tracer()
    lease_read(tracer, "v1.0")
    commit(tracer, "v2.1")
    with pytest.raises(InvariantViolation) as caught:
        lease_read(tracer, "v1.0")
    assert caught.value.monitor == "stale_lease"
    assert "stale lease" in str(caught.value)


def test_viewid_ordering_is_numeric_not_lexicographic():
    tracer = make_tracer()
    commit(tracer, "v10.2")
    with pytest.raises(InvariantViolation):
        lease_read(tracer, "v9.1")  # "v9.1" > "v10.2" as strings


def test_quiet_on_reads_in_the_committing_view_or_newer():
    tracer = make_tracer()
    lease_read(tracer, "v1.0")  # before any commit: fine
    commit(tracer, "v2.1")
    lease_read(tracer, "v2.1")
    lease_read(tracer, "v3.0")
    commit(tracer, "v1.0", ts=9)  # a late, older commit must not regress
    lease_read(tracer, "v2.1")


def test_quiet_on_backup_and_other_group_commits():
    tracer = make_tracer()
    # backup record_added and other groups' commits advance nothing here
    tracer.emit("record_added", node="n1", group="kv", mid=1,
                viewid="v5.0", ts=3, rtype="Committed", role="backup")
    commit(tracer, "v5.0", group="other")
    lease_read(tracer, "v1.0")
