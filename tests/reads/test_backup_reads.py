"""Stale-bounded backup reads: a fresh backup serves within the bound
with honest staleness, an unsatisfiable bound steers the read to the
leased primary, and a backup cut off from the replication stream rejects
bounded reads while still serving its old prefix under an explicitly
generous bound."""

from repro.config import ProtocolConfig, ReadConfig
from repro.harness.common import build_kv_system
from repro.workloads.loadgen import run_retry_loop

from tests.reads.test_lease_protocol import commit_write, run_read


def reads_config(**kwargs):
    return ProtocolConfig(reads=ReadConfig(enabled=True, **kwargs))


class _PickMid:
    """Deterministic stand-in for the driver's backup-choice rng."""

    def __init__(self, mid):
        self.mid = mid

    def choice(self, addresses):
        for address in addresses:
            if str(address).endswith(f"/{self.mid}"):
                return address
        raise AssertionError(
            f"no address for mid {self.mid} in {addresses!r}"
        )


def test_fresh_backup_serves_within_the_default_bound():
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=31, config=reads_config(default_max_staleness=20.0)
    )
    rt.run_for(150.0)
    commit_write(rt, driver, spec.key(0), 1)
    result = run_read(rt, driver, "kv", spec.key(0), prefer="backup")
    assert result.ok
    assert result.mode == "backup"
    assert result.value == 1
    assert 0.0 <= result.staleness <= 20.0
    assert rt.metrics.counters.get("backup_reads:kv", 0) >= 1


def test_unsatisfiable_bound_steers_to_the_leased_primary():
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=32, config=reads_config()
    )
    rt.run_for(150.0)
    commit_write(rt, driver, spec.key(0), 3)
    result = run_read(
        rt, driver, "kv", spec.key(0), prefer="backup", max_staleness=1e-6
    )
    assert result.ok
    assert result.mode == "lease"
    assert result.value == 3
    assert result.staleness == 0.0


def test_lagging_backup_rejects_bounded_reads_but_serves_its_prefix():
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=33, config=reads_config(default_max_staleness=20.0)
    )
    rt.run_for(150.0)
    commit_write(rt, driver, spec.key(0), 1)
    primary = kv.active_primary()
    lagger = next(
        cohort for cohort in kv.cohorts.values()
        if cohort.mymid != primary.mymid
    )
    driver._read_rng = _PickMid(lagger.mymid)

    # sever only the lagging backup's replication stream; commits still
    # reach a majority (the primary plus the other backup).  Step in
    # small increments from here on: the whole lagging window must stay
    # under the underling timeout, or the cut-off backup calls a view
    # change and the reformed view catches it up.
    rt.faults.fail_link(primary.node.node_id, lagger.node.node_id)
    cut_at = rt.sim.now
    stats = run_retry_loop(
        rt, driver, "clients", [("write", ("kv", spec.key(0), 2))]
    )
    while stats.committed < 1 and rt.sim.now < cut_at + 30.0:
        rt.run_for(5.0)
    assert stats.committed == 1, "write never committed"
    rt.run_for(15.0)  # lag grows past the 20.0 bound

    # bounded read at the lagging backup: too stale, steered to the
    # leased primary, which serves the committed value
    steered = run_read(rt, driver, "kv", spec.key(0), prefer="backup")
    assert steered.ok and steered.mode == "lease" and steered.value == 2

    # an explicitly generous bound reads the lagging backup's old
    # prefix, with the staleness reported honestly
    stale = run_read(
        rt, driver, "kv", spec.key(0), prefer="backup", max_staleness=500.0
    )
    assert stale.ok
    assert stale.mode == "backup"
    assert stale.value == 1
    assert stale.staleness > 20.0

    # healed, the backup catches up and serves fresh bounded reads again
    rt.faults.heal()
    rt.run_for(80.0)
    caught_up = run_read(rt, driver, "kv", spec.key(0), prefer="backup")
    assert caught_up.ok
    assert caught_up.mode == "backup"
    assert caught_up.value == 2
    assert caught_up.staleness <= 20.0
