"""Unit tests for the client-side commit-set cache (repro.reads.cache):
entries serve within the staleness window, the stable-timestamp watermark
prunes them, capacity evicts oldest-first, and per-request bounds can
only tighten the window."""

from repro.reads.cache import CommitSetCache


class _Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_cache(staleness=25.0, capacity=4, now=0.0):
    clock = _Clock(now)
    return CommitSetCache(
        staleness=staleness, capacity=capacity, clock=clock
    ), clock


def test_lookup_hits_within_window_and_reports_staleness():
    cache, clock = make_cache(staleness=25.0)
    cache.note("key0", 7)
    clock.now = 10.0
    assert cache.lookup("key0") == (7, 10.0)
    assert cache.hits == 1
    assert cache.lookup("other") is None
    assert cache.misses == 1


def test_entries_age_out_past_the_watermark():
    cache, clock = make_cache(staleness=25.0)
    cache.note("key0", 7)
    clock.now = 26.0
    assert cache.lookup("key0") is None
    # the prune is physical: the stable-timestamp watermark dropped it
    assert len(cache) == 0


def test_newest_entry_wins():
    cache, clock = make_cache(staleness=25.0)
    cache.note("key0", 1)
    clock.now = 5.0
    cache.note("key0", 2)
    clock.now = 8.0
    assert cache.lookup("key0") == (2, 3.0)


def test_max_staleness_tightens_but_never_widens_the_window():
    cache, clock = make_cache(staleness=25.0)
    cache.note("key0", 7)
    clock.now = 10.0
    assert cache.lookup("key0", max_staleness=5.0) is None
    # a generous per-request bound cannot resurrect pruned entries
    clock.now = 26.0
    assert cache.lookup("key0", max_staleness=1000.0) is None


def test_capacity_evicts_oldest_first():
    cache, clock = make_cache(staleness=1000.0, capacity=2)
    cache.note("a", 1)
    cache.note("b", 2)
    cache.note("c", 3)
    assert len(cache) == 2
    assert cache.lookup("a") is None
    assert cache.lookup("b") == (2, 0.0)
    assert cache.lookup("c") == (3, 0.0)


def test_explicit_commit_timestamp_backdates_the_entry():
    cache, clock = make_cache(staleness=25.0)
    clock.now = 20.0
    cache.note("key0", 7, t=2.0)  # a reply that reflects an old viewstamp
    assert cache.lookup("key0") == (7, 18.0)
    clock.now = 30.0  # t=2.0 is now past the 25.0 window
    assert cache.lookup("key0") is None
