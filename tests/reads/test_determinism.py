"""Determinism of the read serving path: same seed, same condition must
replay byte-for-byte, and every serving configuration (reads disabled,
leases, backup reads, client cache) must leave the committed state with
an identical digest -- the property `python -m repro.reads.gate` checks
at full size, here at small parameters for the tier-1 suite."""

from repro.harness.experiments_reads import (
    E19_CONDITIONS,
    _reads_run,
    _reads_state_run,
)


def test_same_seed_same_condition_replays_identically():
    first = _reads_run(5, "leases", n_keys=8, duration=150.0, rate=0.4)
    second = _reads_run(5, "leases", n_keys=8, duration=150.0, rate=0.4)
    assert first == second


def test_all_serving_configs_commit_identical_state():
    runs = {
        condition: _reads_state_run(6, condition, txns=8, duration=120.0)
        for condition in E19_CONDITIONS
    }
    digests = {digest for _metrics, digest in runs.values()}
    assert len(digests) == 1, (
        "serving configs diverged: "
        + ", ".join(
            f"{condition}={digest[:12]}"
            for condition, (_metrics, digest) in sorted(runs.items())
        )
    )
    committed = {
        metrics["writes_committed"] for metrics, _digest in runs.values()
    }
    assert committed == {8}
