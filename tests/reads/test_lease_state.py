"""Unit tests for the lease bookkeeping (repro.reads.lease): validity is
a configuration-majority rule over unexpired grants, promises survive
pruning exactly while unexpired, recovery leaves a conservative residue,
and the view-formation bound covers every reported promise to anyone but
the chosen primary."""

from repro.config import ReadConfig
from repro.reads.lease import CRASH_GRANTEE, ReadState, formation_lease_bound


class _View:
    def __init__(self, primary, backups):
        self.primary = primary
        self.backups = tuple(backups)


class _Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_state(config_size=3, lease_duration=30.0, now=0.0):
    clock = _Clock(now)
    state = ReadState(
        ReadConfig(enabled=True, lease_duration=lease_duration),
        config_size,
        clock,
    )
    return state, clock


def test_lease_needs_majority_of_unexpired_grants():
    state, clock = make_state(config_size=3)
    view = _View(0, [1, 2])
    assert not state.lease_valid(view)
    state.record_grant(1, 30.0)
    # self + one grantor = 2 = majority(3)
    assert state.lease_valid(view)
    clock.now = 30.0  # grants are valid strictly while expiry > now
    assert not state.lease_valid(view)


def test_lease_ignores_grants_from_non_members():
    state, clock = make_state(config_size=3)
    state.record_grant(7, 100.0)  # not a backup of this view
    assert not state.lease_valid(_View(0, [1, 2]))
    assert state.lease_valid(_View(0, [7, 2]))


def test_lease_until_is_kth_largest_expiry():
    state, clock = make_state(config_size=5)
    view = _View(0, [1, 2, 3, 4])
    # majority(5) = 3, so self + 2 grantors; validity lapses when the
    # 2nd-largest unexpired grant does
    state.record_grant(1, 40.0)
    assert state.lease_until(view) == 0.0  # one grantor is not enough
    state.record_grant(2, 25.0)
    state.record_grant(3, 10.0)
    assert state.lease_valid(view)
    assert state.lease_until(view) == 25.0
    clock.now = 26.0
    assert not state.lease_valid(view)
    assert state.lease_until(view) == 0.0


def test_singleton_group_holds_its_lease_forever():
    state, _clock = make_state(config_size=1)
    view = _View(0, [])
    assert state.lease_valid(view)
    assert state.lease_until(view) == float("inf")


def test_record_grant_keeps_the_newest_expiry():
    state, _clock = make_state()
    state.record_grant(1, 30.0)
    state.record_grant(1, 20.0)  # stale duplicate must not shorten
    assert state.grants[1] == 30.0


def test_promises_prune_lazily_and_keep_max():
    state, clock = make_state(lease_duration=30.0)
    assert state.make_promise(0) == 30.0
    clock.now = 10.0
    assert state.make_promise(0) == 40.0
    state.make_promise(2)
    clock.now = 41.0  # promise to 0 expired, promise to 2 (until 40) too
    assert state.outstanding_promises() == ()
    clock.now = 20.0
    state.make_promise(0)
    assert state.outstanding_promises() == ((0, 50.0),)


def test_promise_residue_covers_lost_volatile_state():
    state, clock = make_state(lease_duration=30.0)
    state.make_promise(0)
    clock.now = 5.0
    state.promise_residue()
    assert state.outstanding_promises() == ((CRASH_GRANTEE, 35.0),)


def test_reset_grants_clears_validity():
    state, _clock = make_state(config_size=3)
    view = _View(0, [1, 2])
    state.record_grant(1, 30.0)
    state.was_valid = True
    state.reset_grants()
    assert not state.lease_valid(view)
    assert not state.was_valid


def test_staleness_tracks_mark_fresh():
    state, clock = make_state(now=100.0)
    assert state.staleness() == 0.0
    clock.now = 112.0
    assert state.staleness() == 12.0
    state.mark_fresh()
    assert state.staleness() == 0.0


class _Acceptance:
    def __init__(self, promises):
        self.lease_promises = tuple(promises)


def test_formation_bound_is_max_over_foreign_promises():
    responses = [
        _Acceptance([(0, 50.0), (3, 80.0)]),
        _Acceptance([(0, 65.0)]),
        object(),  # an acceptance without lease_promises contributes 0
    ]
    # promises to the chosen primary itself are harmless
    assert formation_lease_bound(responses, chosen_primary=0) == 80.0
    assert formation_lease_bound(responses, chosen_primary=3) == 65.0
    assert formation_lease_bound([], chosen_primary=0) == 0.0


def test_formation_bound_counts_crash_residue_against_any_primary():
    responses = [_Acceptance([(CRASH_GRANTEE, 90.0)])]
    for primary in (0, 1, 2):
        assert formation_lease_bound(responses, primary) == 90.0
