"""End-to-end repro.scale behavior: witnesses, ack trees, and the nemesis.

Witness replicas vote in view formation but hold no event buffer, so a
crash-and-reform cycle must (a) never count a witness toward state
coverage, (b) still install formed views on witnesses, and (c) leave
the replicated state exactly what an unscaled group computes.  The
nemesis's crash planner must treat witness-only survivor sets as
stranded even when a bare majority survives.
"""

import pytest

from repro import EmptyModule, Nemesis, Runtime
from repro.config import ProtocolConfig, ScaleConfig
from repro.core.cohort import Status
from repro.harness.common import build_kv_system
from repro.workloads.kv import KVStoreSpec


def _scaled_kv(seed, n_cohorts, scale, n_keys=8):
    config = ProtocolConfig(scale=scale)
    rt, kv, clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=n_cohorts, config=config, n_keys=n_keys
    )
    return rt, kv, driver, spec


def _commit_writes(rt, driver, spec, count, base=0):
    from repro.workloads.loadgen import run_retry_loop

    jobs = [
        ("write", ("kv", spec.key((base + i) % spec.n_keys), base + i))
        for i in range(count)
    ]
    stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=2)
    deadline = rt.sim.now + 50_000.0
    while stats.committed < count and rt.sim.now < deadline:
        rt.run_for(100.0)
    assert stats.committed == count
    return stats


# -- witnesses through a view change ---------------------------------------


def test_witnesses_never_hold_a_buffer_and_join_views():
    rt, kv, driver, spec = _scaled_kv(31, 7, ScaleConfig(witnesses=2))
    rt.run_for(200.0)
    _commit_writes(rt, driver, spec, 6)
    assert kv.witness_mids == frozenset({5, 6})
    for mid in kv.witness_mids:
        witness = kv.cohort(mid)
        assert witness.is_witness
        assert witness.buffer is None
        assert witness.status is Status.ACTIVE, (
            "witness never installed the formed view"
        )
        assert witness.cur_viewid == kv.active_primary().cur_viewid


def test_witness_group_reforms_after_primary_crash_and_state_matches():
    """Crash the primary of a witness-bearing group, reform, recover, and
    the surviving state must equal what the unscaled group computes for
    the same committed writes."""
    scale = ScaleConfig(witnesses=2)
    rt, kv, driver, spec = _scaled_kv(32, 7, scale)
    rt.run_for(200.0)
    _commit_writes(rt, driver, spec, 8)
    crashed = kv.crash_primary()
    deadline = rt.sim.now + 20_000.0
    while kv.active_primary() is None and rt.sim.now < deadline:
        rt.run_for(50.0)
    primary = kv.active_primary()
    assert primary is not None, "witness group never re-formed"
    assert primary.mymid not in kv.witness_mids, "a witness became primary"
    _commit_writes(rt, driver, spec, 8, base=8)
    kv.recover_cohort(crashed)
    rt.quiesce(500.0)
    rt.check_invariants(require_convergence=False)
    # Witnesses joined the new view too.
    viewid = kv.active_primary().cur_viewid
    for mid in kv.witness_mids:
        assert kv.cohort(mid).cur_viewid == viewid


def test_witness_crash_does_not_block_views_or_forces():
    """Witnesses are availability padding: with both witnesses down, the
    storage members still form views and commit (majority(7)=4 <= 5
    storage members)."""
    rt, kv, driver, spec = _scaled_kv(33, 7, ScaleConfig(witnesses=2))
    rt.run_for(200.0)
    for mid in sorted(kv.witness_mids):
        kv.crash_cohort(mid)
    _commit_writes(rt, driver, spec, 6)
    crashed = kv.crash_primary()
    deadline = rt.sim.now + 20_000.0
    while kv.active_primary() is None and rt.sim.now < deadline:
        rt.run_for(50.0)
    assert kv.active_primary() is not None
    kv.recover_cohort(crashed)
    for mid in sorted(kv.witness_mids):
        kv.recover_cohort(mid)
    rt.quiesce(500.0)
    rt.check_invariants(require_convergence=False)


def test_witness_rejects_reads_and_holds_no_state():
    rt, kv, driver, spec = _scaled_kv(34, 5, ScaleConfig(witnesses=1))
    rt.run_for(200.0)
    _commit_writes(rt, driver, spec, 4)
    # Group-level convergence checks skip witnesses entirely.
    report = kv.divergence_report()
    assert not any(
        mid in kv.witness_mids for mid in getattr(report, "mids", [])
    )
    rt.check_invariants(require_convergence=True)


def test_witness_overflow_rejected_at_group_construction():
    rt = Runtime(seed=9, config=ProtocolConfig(
        scale=ScaleConfig(witnesses=3)
    ))
    with pytest.raises(ValueError):
        rt.create_group("g", EmptyModule(), n_cohorts=5)  # max is 2


# -- ack tree under load ----------------------------------------------------

def test_ack_tree_commits_and_converges_like_direct_acks():
    """Tree-aggregated acks may delay and re-route, never change state:
    the same seed with and without the tree agrees on the final
    replicated state digest."""
    from repro.perf.report import state_digest

    digests = {}
    for label, scale in (
        ("direct", None),
        ("tree", ScaleConfig(ack_tree=True, ack_fanout=2)),
    ):
        rt, kv, driver, spec = _scaled_kv(35, 9, scale)
        rt.run_for(200.0)
        _commit_writes(rt, driver, spec, 12)
        rt.quiesce(500.0)
        rt.check_invariants(require_convergence=True)
        digests[label] = state_digest(rt)
    assert digests["direct"] == digests["tree"]


def test_ack_tree_survives_interior_node_crash():
    """Acks from a crashed interior node's subtree still reach the
    primary: the go-direct fallback (tree recomputed per view, crashed
    members excluded after reform) must not wedge forces."""
    rt, kv, driver, spec = _scaled_kv(
        36, 9, ScaleConfig(ack_tree=True, ack_fanout=2)
    )
    rt.run_for(200.0)
    _commit_writes(rt, driver, spec, 4)
    # The first storage backup in sorted order is an ack-tree root with
    # children; crash it mid-run.
    primary = kv.active_primary()
    backups = sorted(m for m in kv.cohorts if m != primary.mymid)
    kv.crash_cohort(backups[0])
    _commit_writes(rt, driver, spec, 6, base=4)
    kv.recover_cohort(backups[0])
    rt.quiesce(500.0)
    rt.check_invariants(require_convergence=False)


# -- nemesis: witness-aware crash planning ----------------------------------


def test_crash_churn_protects_storage_quorum_not_just_majority():
    """Protected crash churn on a witness-bearing group must keep enough
    *storage* cohorts up to cover past force quorums, not merely a bare
    (possibly witness-heavy) majority -- the healed group must always be
    able to re-form and converge."""
    rt, kv, driver, spec = _scaled_kv(37, 7, ScaleConfig(witnesses=2))
    rt.run_for(200.0)
    node_ids = [node.node_id for node in kv.nodes()]
    nemesis = Nemesis("witness-churn").crash_churn(
        node_ids, mttf=400.0, mttr=200.0, protect_group="kv"
    )
    rt.inject(nemesis)
    rt.run_for(6_000.0)
    rt.faults.stop()
    rt.faults.heal()
    rt.faults.restore_links()
    limit = rt.sim.now + 6_000.0
    while kv.active_primary() is None and rt.sim.now < limit:
        rt.run_for(200.0)
    assert kv.active_primary() is not None
    _commit_writes(rt, driver, spec, 6)
    rt.quiesce(1_000.0)
    rt.check_invariants(require_convergence=True)


def test_crash_would_strand_counts_storage_survivors():
    """The planner's guard on a witness-bearing 7-group (5 storage + 2
    witnesses): crashes are allowed down to exactly the form_view
    coverage floor (storage - majority + 1 = 2 storage survivors), and
    the bare-majority test counts witnesses too.  The storage-floor
    branch is implied by the majority test whenever the witness bound
    ``w <= n - majority(n)`` holds -- it is deliberate hardening against
    that bound ever loosening -- so what is observable here is that the
    guard agrees with form_view at every boundary."""
    from repro.faults.nemesis import CrashChurnRule

    rt, kv, driver, spec = _scaled_kv(38, 7, ScaleConfig(witnesses=2))
    rt.run_for(400.0)
    rule = CrashChurnRule((), 1.0, 1.0, None, "probe", "kv")
    storage = sorted(m for m in kv.cohorts if m not in kv.witness_mids)
    nodes = {mid: kv.cohort(mid).node.node_id for mid in kv.cohorts}
    controller = rt.faults
    # Healthy group: crashing one storage member strands nothing.
    assert not rule._crash_would_strand(controller, nodes[storage[0]])
    kv.crash_cohort(storage[0])
    kv.crash_cohort(storage[1])
    # Two down: a third crash leaves 4 of 7 up (a majority) and exactly
    # the 2-storage coverage floor -- allowed, matching form_view.
    assert not rule._crash_would_strand(controller, nodes[storage[2]])
    kv.crash_cohort(storage[2])
    # Three down: any fourth crash -- storage OR witness -- breaks the
    # majority; witnesses are survivors for quorum but never for storage
    # coverage.
    assert rule._crash_would_strand(controller, nodes[storage[3]])
    assert rule._crash_would_strand(
        controller, nodes[sorted(kv.witness_mids)[0]]
    )
