"""The E21 gate cell and the scale docs-drift CLI."""

import pathlib

from repro.config import ScaleConfig
from repro.harness.experiments_cohort import _scale_state_run
from repro.scale.__main__ import main as scale_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_state_run_is_deterministic_and_mechanism_invariant():
    baseline = _scale_state_run(77, None, txns=8, n_cohorts=5)
    again = _scale_state_run(77, None, txns=8, n_cohorts=5)
    assert baseline == again  # same seed, same run -- metrics and digests
    metrics, ledger, state = baseline
    assert metrics["writes_committed"] == 8
    # All-off is byte-identical DOWN TO THE SCHEDULE (ledger digest)...
    all_off = _scale_state_run(77, ScaleConfig(), txns=8, n_cohorts=5)
    assert all_off == baseline
    # ...while armed mechanisms move messages but never change the state.
    armed = _scale_state_run(
        77, ScaleConfig(gossip=True, ack_tree=True, witnesses=1),
        txns=8, n_cohorts=5,
    )
    assert armed[0]["writes_committed"] == 8
    assert armed[2] == state
    assert armed[1] != ledger  # gossip genuinely reshapes the schedule


def test_check_docs_passes_on_shipped_doc(capsys):
    doc = REPO_ROOT / "docs" / "SCALE.md"
    assert scale_main(["check-docs", str(doc)]) == 0
    assert "documents all" in capsys.readouterr().out


def test_check_docs_fails_on_incomplete_doc(tmp_path, capsys):
    doc = tmp_path / "SCALE.md"
    doc.write_text("# scaling\n\nnothing relevant here\n")
    assert scale_main(["check-docs", str(doc)]) == 1
    assert "missing documentation" in capsys.readouterr().err


def test_check_docs_unreadable_doc(tmp_path):
    assert scale_main(["check-docs", str(tmp_path / "missing.md")]) == 2
