"""Unit tests for the repro.scale building blocks.

AckTree topology, witness sizing/bounds, and the all-off => None
normalization that underwrites the zero-cost-when-disabled claim.
"""

import pytest

from repro.config import ProtocolConfig, ScaleConfig
from repro.core.view import majority
from repro.scale import (
    AckTree,
    max_witnesses,
    storage_size,
    validate_witnesses,
    witness_mids,
)


# -- AckTree ----------------------------------------------------------------


def test_ack_tree_roots_report_to_primary():
    tree = AckTree(primary=0, backups=range(1, 14), fanout=4)
    # The first `fanout` backups in sorted order are the tree roots.
    for mid in (1, 2, 3, 4):
        assert tree.parent(mid) == 0


def test_ack_tree_interior_parent_and_children_agree():
    tree = AckTree(primary=0, backups=range(1, 30), fanout=4)
    for mid in tree.order:
        for child in tree.children(mid):
            assert tree.parent(child) == mid


def test_ack_tree_every_backup_reaches_the_primary():
    tree = AckTree(primary=0, backups=range(1, 100), fanout=3)
    for mid in tree.order:
        hops = 0
        node = mid
        while node != 0:
            node = tree.parent(node)
            hops += 1
            assert hops <= len(tree.order), "cycle in ack tree"
    # Fan-in bound: nobody aggregates more than `fanout` children.
    for mid in tree.order:
        assert len(tree.children(mid)) <= 3


def test_ack_tree_primary_fan_in_is_fanout_not_n():
    tree = AckTree(primary=7, backups=[b for b in range(50) if b != 7], fanout=4)
    roots = [mid for mid in tree.order if tree.parent(mid) == 7]
    assert len(roots) == 4


def test_ack_tree_is_order_deterministic():
    a = AckTree(primary=0, backups=[5, 3, 9, 1, 7], fanout=2)
    b = AckTree(primary=0, backups=[9, 7, 5, 3, 1], fanout=2)
    assert a.order == b.order == (1, 3, 5, 7, 9)
    assert all(a.parent(m) == b.parent(m) for m in a.order)


def test_ack_tree_unknown_mid_defaults_to_primary():
    tree = AckTree(primary=0, backups=[1, 2, 3], fanout=2)
    assert tree.parent(99) == 0
    assert tree.children(99) == ()


def test_ack_tree_fanout_floor_is_one():
    tree = AckTree(primary=0, backups=[1, 2, 3], fanout=0)
    assert tree.fanout == 1
    assert tree.parent(1) == 0
    assert tree.parent(2) == 1  # a chain


# -- witness sizing ---------------------------------------------------------


@pytest.mark.parametrize("n", [3, 4, 5, 7, 9, 25, 100])
def test_max_witnesses_leaves_a_storage_force_quorum(n):
    w = max_witnesses(n)
    assert storage_size(n, w) >= majority(n)
    validate_witnesses(n, w)  # the bound itself is valid
    with pytest.raises(ValueError):
        validate_witnesses(n, w + 1)


def test_witness_mids_are_the_highest_and_never_the_seed_primary():
    mids = witness_mids(9, 2)
    assert mids == frozenset({7, 8})
    assert 0 not in witness_mids(5, max_witnesses(5))
    assert witness_mids(9, 0) == frozenset()


def test_validate_witnesses_rejects_negative():
    with pytest.raises(ValueError):
        validate_witnesses(5, -1)


# -- all-off normalization --------------------------------------------------


def test_all_off_scale_config_reports_nothing_enabled():
    assert not ScaleConfig().any_enabled()
    assert ScaleConfig(gossip=True).any_enabled()
    assert ScaleConfig(ack_tree=True).any_enabled()
    assert ScaleConfig(witnesses=1).any_enabled()


def test_cohort_normalizes_all_off_scale_to_none():
    """The `scale is None` fast path must cover an all-off ScaleConfig,
    or the byte-identical-schedule claim would hinge on every hot-path
    branch checking each mechanism individually."""
    from repro import EmptyModule, Runtime

    rt = Runtime(seed=1, config=ProtocolConfig(scale=ScaleConfig()))
    group = rt.create_group("g", EmptyModule(), n_cohorts=3)
    for cohort in group.cohorts.values():
        assert cohort.scale is None
    rt_armed = Runtime(
        seed=1, config=ProtocolConfig(scale=ScaleConfig(gossip=True))
    )
    armed = rt_armed.create_group("g", EmptyModule(), n_cohorts=3)
    for cohort in armed.cohorts.values():
        assert cohort.scale is not None
