"""Shared helpers for the sharding test suite."""

from __future__ import annotations

from repro import Runtime


def build_sharded(seed=11, n_shards=4, name="kv", settle=150.0, trace=None,
                  **kwargs):
    """Runtime + sharded façade + driver, settled into initial views."""
    trace_kwargs = {"trace": trace} if trace is not None else {}
    rt = Runtime(seed=seed, **trace_kwargs)
    sharded = rt.sharded_group(name, n_shards=n_shards, **kwargs)
    driver = rt.create_driver("driver")
    rt.run_for(settle)
    return rt, sharded, driver


def submit(rt, driver, sharded, program, *args, time=800.0, retries=8):
    """Submit one key-addressed job and run until it resolves."""
    future = driver.call(sharded, program, *args, retries=retries)
    rt.run_for(time)
    assert future.done, f"{program}{args!r} still pending after {time}"
    return future.result()


def keys_owned_by(sharded, index, count=1, prefix="q"):
    """The first *count* keys the map assigns to shard *index*."""
    groupid = sharded.shard_groupid(index)
    found = []
    candidate = 0
    while len(found) < count:
        key = f"{prefix}{candidate}"
        if sharded.map.shard_for(key) == groupid:
            found.append(key)
        candidate += 1
        assert candidate < 10_000, f"no keys hash to {groupid}"
    return found


def await_primary(rt, group, deadline=4000.0):
    """Run until *group* has an active primary; fail past *deadline*."""
    limit = rt.sim.now + deadline
    while rt.sim.now < limit:
        primary = group.active_primary()
        if primary is not None:
            return primary
        rt.run_for(50)
    raise AssertionError(f"no active primary for {group.groupid}")
