"""The sharded façade end to end: routing, cross-shard 2PC, determinism."""

import pytest

from repro import EmptyModule, Runtime
from repro.config import TraceConfig
from repro.shard.map import ShardMap

from tests.shard.util import build_sharded, keys_owned_by, submit


def test_single_key_routes_to_owning_shard():
    _rt, sharded, _driver = build_sharded(settle=0)
    groupid, program, args = sharded.route("write", ("q1", 7))
    assert groupid == sharded.map.shard_for("q1")
    assert program == "write"
    assert args == (groupid, "q1", 7)


def test_cross_shard_routes_to_router():
    _rt, sharded, _driver = build_sharded(settle=0)
    groupid, program, args = sharded.route("transfer", ("a", "b", 1))
    assert groupid == sharded.router_groupid
    assert (program, args) == ("transfer", ("a", "b", 1))


def test_touched_shards():
    _rt, sharded, _driver = build_sharded(settle=0)
    (alone,) = keys_owned_by(sharded, 3)
    assert sharded.touched_shards("write", (alone, 1)) == (
        sharded.shard_groupid(3),
    )
    (src,) = keys_owned_by(sharded, 0)
    (dst,) = keys_owned_by(sharded, 2)
    assert sharded.touched_shards("transfer", (src, dst, 1)) == tuple(
        sorted({sharded.shard_groupid(0), sharded.shard_groupid(2)})
    )
    with pytest.raises(KeyError):
        sharded.touched_shards("no_such_program", ("k",))


def test_write_then_read_through_facade():
    rt, sharded, driver = build_sharded()
    (key,) = keys_owned_by(sharded, 2)
    outcome, _ = submit(rt, driver, sharded, "write", key, 41)
    assert outcome == "committed"
    outcome, value = submit(rt, driver, sharded, "read", key)
    assert (outcome, value) == ("committed", 41)


def test_seq_put_stamps_monotonic_sequence_per_shard():
    rt, sharded, driver = build_sharded(n_shards=2)
    keys = keys_owned_by(sharded, 0, count=3)
    stamps = []
    for index, key in enumerate(keys):
        outcome, stamp = submit(rt, driver, sharded, "seq_put", key, index)
        assert outcome == "committed"
        stamps.append(stamp)
    assert stamps == [1, 2, 3]


def test_multi_put_multi_get_cross_shard():
    rt, sharded, driver = build_sharded()
    pairs = tuple((f"m{i}", i * 10) for i in range(6))
    assert len(sharded.touched_shards("multi_put", (pairs,))) > 1
    outcome, count = submit(rt, driver, sharded, "multi_put", pairs)
    assert (outcome, count) == ("committed", 6)
    outcome, values = submit(
        rt, driver, sharded, "multi_get", tuple(key for key, _ in pairs)
    )
    assert outcome == "committed"
    assert dict(values) == {f"m{i}": i * 10 for i in range(6)}


def test_transfer_treats_missing_keys_as_zero():
    rt, sharded, driver = build_sharded()
    (src,) = keys_owned_by(sharded, 0)
    (dst,) = keys_owned_by(sharded, 1)
    outcome, balances = submit(rt, driver, sharded, "transfer", src, dst, 5)
    assert outcome == "committed"
    assert tuple(balances) == (-5, 5)


def test_routing_emits_shard_route_trace_events():
    rt, sharded, driver = build_sharded(trace=TraceConfig())
    (key,) = keys_owned_by(sharded, 0)
    outcome, _ = submit(rt, driver, sharded, "write", key, 1)
    assert outcome == "committed"
    routes = [e for e in rt.tracer._ring if e.kind == "shard_route"]
    assert routes, "no shard_route event emitted"
    assert routes[-1].data["group"] == sharded.map.shard_for(key)
    assert routes[-1].data["map_version"] == sharded.map.version


def test_duplicate_names_rejected():
    rt = Runtime(seed=3)
    rt.sharded_group("kv", n_shards=2)
    with pytest.raises(ValueError):
        rt.sharded_group("kv", n_shards=2)
    # shard groups occupy the global groupid namespace too
    with pytest.raises(ValueError):
        rt.create_group("kv-s0", EmptyModule())
    with pytest.raises(ValueError):
        rt.sharded_group("bad", n_shards=0)


def test_republish_bumps_version_and_rejects_stale():
    rt, sharded, driver = build_sharded(n_shards=2)
    original = sharded.map
    sharded.republish(original.rebalanced())
    assert rt.location.shard_map("kv").version == original.version + 1
    with pytest.raises(ValueError):
        rt.location.publish_shard_map("kv", original)
    with pytest.raises(ValueError):
        sharded.republish(ShardMap(("other-a", "other-b"), version=5))
    # hash maps keep assignments across rebalance versions, and routing
    # keeps working after the republish
    assert original.moved_keys(sharded.map, [f"q{i}" for i in range(100)]) == []
    outcome, _ = submit(rt, driver, sharded, "write", "q0", 9)
    assert outcome == "committed"


def test_routing_independent_of_runtime_seed():
    _rt_a, sharded_a, _ = build_sharded(seed=1, settle=0)
    _rt_b, sharded_b, _ = build_sharded(seed=987654321, settle=0)
    keys = [f"q{i}" for i in range(50)]
    assert [sharded_a.map.shard_for(k) for k in keys] == [
        sharded_b.map.shard_for(k) for k in keys
    ]


def test_same_seed_runs_have_identical_shard_digests():
    def one_run():
        rt, sharded, driver = build_sharded(seed=99, n_shards=3)
        for index in range(6):
            outcome, _ = submit(
                rt, driver, sharded, "seq_put", f"q{index}", index
            )
            assert outcome == "committed"
        outcome, _ = submit(rt, driver, sharded, "transfer", "q0", "q5", 2)
        assert outcome == "committed"
        rt.quiesce()
        rt.check_invariants()
        return sharded.ledger_digests()

    first = one_run()
    second = one_run()
    assert set(first) == {f"kv-s{i}" for i in range(3)}
    assert first == second
