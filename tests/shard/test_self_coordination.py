"""The sharded single-key path: one group coordinates itself.

Routing a single-key call to the owning shard's primary means the same
cohort plays both the client role (coordinator) and the server role
(participant) for one transaction.  These tests pin the engine behaviours
that path depends on: the self-addressed commit still installs and
releases write locks, a self-coordinated abort releases its locks
synchronously, and a procedure raising an unexpected exception fails the
call instead of wedging the group behind a dead lock holder.
"""

from repro import Runtime, procedure, transaction_program
from repro.app.context import TransactionAborted
from repro.workloads.kv import KVStoreSpec, write_program


class SelfServeSpec(KVStoreSpec):
    @procedure
    def boom(self, ctx, key):
        yield ctx.read_for_update(key)
        raise TypeError("procedure bug")

    @procedure
    def guarded_take(self, ctx, key, limit):
        value = yield ctx.read_for_update(key)
        if value < limit:
            raise TransactionAborted(f"{key} below {limit}")
        yield ctx.write(key, value - limit)
        return value - limit


@transaction_program
def boom_program(txn, group, key):
    result = yield txn.call(group, "boom", key)
    return result


@transaction_program
def take_program(txn, group, key, limit):
    result = yield txn.call(group, "guarded_take", key, limit)
    return result


def build_self_group(seed=5):
    rt = Runtime(seed=seed)
    spec = SelfServeSpec(n_keys=4, prefix="k")
    spec.register_program("write", write_program)
    spec.register_program("boom", boom_program)
    spec.register_program("take", take_program)
    group = rt.create_group("g", spec, n_cohorts=3)
    driver = rt.create_driver("driver")
    rt.run_for(100)
    return rt, group, driver


def submit(rt, driver, program, *args, time=800.0):
    future = driver.submit("g", program, *args)
    rt.run_for(time)
    assert future.done, f"{program}{args!r} still pending"
    return future.result()


def test_self_coordinated_writes_install_and_release_locks():
    rt, group, driver = build_self_group()
    # Each write takes the same write lock; if the self-addressed commit
    # skipped the install, the second write would wait forever.
    for value in (1, 2, 3):
        outcome, _ = submit(rt, driver, "write", "g", "k0", value)
        assert outcome == "committed"
    assert group.read_object("k0") == 3
    rt.quiesce()
    rt.check_invariants()


def test_self_coordinated_abort_releases_locks_synchronously():
    rt, group, driver = build_self_group()
    outcome, _ = submit(rt, driver, "take", "g", "k1", 10)
    assert outcome == "aborted"  # k1 starts at 0
    # The abort must have freed k1's write lock: an immediate write (and
    # then a now-satisfiable take) go straight through.
    outcome, _ = submit(rt, driver, "write", "g", "k1", 50)
    assert outcome == "committed"
    outcome, remaining = submit(rt, driver, "take", "g", "k1", 10)
    assert (outcome, remaining) == ("committed", 40)


def test_unexpected_procedure_error_fails_call_without_wedging():
    rt, group, driver = build_self_group()
    outcome, _ = submit(rt, driver, "boom", "g", "k0")
    assert outcome == "aborted"
    assert any(
        "TypeError" in reason for reason in rt.ledger.aborted.values()
    ), rt.ledger.aborted
    # the dead call's lock footprint is gone: the key writes immediately
    outcome, _ = submit(rt, driver, "write", "g", "k0", 7)
    assert outcome == "committed"
    assert group.read_object("k0") == 7
