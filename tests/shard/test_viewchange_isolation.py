"""A view change in one shard must abort only transactions touching it.

The paper's per-participant viewstamp validation (section 3.3) is what
makes sharding composable: a crashed shard invalidates only the psets
naming it.  These tests pin that isolation with explicit key sets -- every
transaction's shard footprint is constructed, not sampled -- so "only
touching transactions abort" is checked exactly, not statistically.
"""

from tests.shard.util import await_primary, build_sharded, keys_owned_by, submit


def test_cross_shard_txn_aborts_then_retries_on_one_shard_view_change():
    rt, sharded, driver = build_sharded(seed=42, n_shards=2)
    (src,) = keys_owned_by(sharded, 0)
    (dst,) = keys_owned_by(sharded, 1)
    future = driver.submit_keyed(
        sharded, "transfer", src, dst, 5, retries=0, timeout=6000.0
    )
    rt.run_for(3.0)  # the transfer's calls/prepares are now in flight
    crashed_mid = sharded.shard(0).crash_primary()
    assert crashed_mid is not None
    rt.run_for(4000.0)
    assert future.done
    outcome, _ = future.result()
    assert outcome == "aborted"
    # the shard re-forms a view and the retried transfer commits; the
    # aborted attempt left no partial effects, so balances start from 0
    sharded.shard(0).recover_cohort(crashed_mid)
    await_primary(rt, sharded.shard(0))
    for _ in range(3):
        outcome, balances = submit(
            rt, driver, sharded, "transfer", src, dst, 5, time=1500.0
        )
        if outcome == "committed":
            break
    assert outcome == "committed"
    assert tuple(balances) == (-5, 5)


def test_single_shard_view_change_aborts_only_touching_txns():
    rt, sharded, driver = build_sharded(seed=7, n_shards=3)
    (touching_key,) = keys_owned_by(sharded, 0)
    safe1 = keys_owned_by(sharded, 1, count=3)
    safe2 = keys_owned_by(sharded, 2, count=3)
    # One cross-shard transfer whose pset will name the crashed shard,
    # and three transactions -- one cross-shard, two single-key -- whose
    # key sets avoid it entirely (and each other, so no lock-wait
    # collateral can blur the attribution).
    touching = driver.submit_keyed(
        sharded, "transfer", touching_key, safe1[0], 1,
        retries=0, timeout=6000.0,
    )
    safe = [
        ("transfer", driver.submit_keyed(
            sharded, "transfer", safe1[1], safe2[1], 1)),
        ("write", driver.submit_keyed(sharded, "write", safe1[2], 9)),
        ("write", driver.submit_keyed(sharded, "write", safe2[2], 9)),
    ]
    rt.run_for(3.0)
    assert sharded.shard(0).crash_primary() is not None
    rt.run_for(4000.0)
    assert touching.done
    outcome, _ = touching.result()
    assert outcome == "aborted"
    for program, future in safe:
        assert future.done
        outcome, _ = future.result()
        assert outcome == "committed", (
            f"{program} touching no crashed shard was aborted"
        )
    # exactly the crashed shard changed views
    assert rt.ledger.view_changes_for(sharded.shard_groupid(0))
    for index in (1, 2):
        assert not rt.ledger.view_changes_for(sharded.shard_groupid(index))
    assert not rt.ledger.view_changes_for(sharded.router_groupid)
