"""ShardMap unit tests: stable routing, validation, versioned rebalance."""

import zlib

import pytest

from repro.location.service import LocationService
from repro.shard.map import ShardMap, stable_hash

KEYS = [f"k{i}" for i in range(200)]


def test_hash_routing_is_crc32_modulo_shards():
    shard_map = ShardMap(("g0", "g1", "g2"))
    for key in KEYS:
        expected = zlib.crc32(key.encode()) % 3
        assert shard_map.shard_for(key) == f"g{expected}"


def test_routing_pinned_and_stable_across_instances():
    # Routing must never depend on the interpreter, the process, or a
    # runtime seed (PYTHONHASHSEED salts builtin hash); pin concrete
    # assignments so a hash-function change fails loudly here.
    shard_map = ShardMap(("g0", "g1", "g2", "g3"))
    again = ShardMap(("g0", "g1", "g2", "g3"))
    assert [shard_map.shard_for(k) for k in KEYS] == [
        again.shard_for(k) for k in KEYS
    ]
    assert stable_hash("k0") == zlib.crc32(b"k0") == 3775500351
    pinned = {"k0": "g3", "k1": "g1", "k2": "g3", "k3": "g1",
              "alpha": "g2", "omega": "g2"}
    assert {key: shard_map.shard_for(key) for key in pinned} == pinned


def test_hash_routing_populates_every_shard():
    shard_map = ShardMap(tuple(f"g{i}" for i in range(8)))
    owners = {shard_map.shard_for(key) for key in KEYS}
    assert owners == set(shard_map.groupids)


def test_range_routing_boundaries():
    shard_map = ShardMap(
        ("low", "mid", "high"), strategy="range", boundaries=("g", "p")
    )
    assert shard_map.shard_for("apple") == "low"
    assert shard_map.shard_for("g") == "mid"  # boundary key goes right
    assert shard_map.shard_for("monkey") == "mid"
    assert shard_map.shard_for("p") == "high"
    assert shard_map.shard_for("zebra") == "high"


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(groupids=()),
        dict(groupids=("g0", "g0")),
        dict(groupids=("g0",), version=0),
        dict(groupids=("g0",), strategy="modulo"),
        dict(groupids=("g0", "g1"), strategy="range"),
        dict(groupids=("g0", "g1"), strategy="range", boundaries=("a", "b")),
        dict(groupids=("g0", "g1", "g2"), strategy="range",
             boundaries=("p", "g")),
        dict(groupids=("g0", "g1", "g2"), strategy="range",
             boundaries=("g", "g")),
        dict(groupids=("g0", "g1"), boundaries=("g",)),
    ],
)
def test_invalid_maps_rejected(kwargs):
    with pytest.raises(ValueError):
        ShardMap(**kwargs)


def test_assignments_partition_keys_sorted_by_group():
    shard_map = ShardMap(("g0", "g1", "g2", "g3"))
    assignments = shard_map.assignments(KEYS)
    assert [gid for gid, _keys in assignments] == sorted(
        gid for gid, _keys in assignments
    )
    flat = [key for _gid, keys in assignments for key in keys]
    assert sorted(flat) == sorted(KEYS)
    for gid, keys in assignments:
        assert all(shard_map.shard_for(key) == gid for key in keys)


def test_group_pairs_keep_values_with_their_keys():
    shard_map = ShardMap(("g0", "g1"))
    pairs = [(key, f"v-{key}") for key in KEYS[:20]]
    for gid, shard_pairs in shard_map.group_pairs(pairs):
        for key, value in shard_pairs:
            assert shard_map.shard_for(key) == gid
            assert value == f"v-{key}"


def test_rebalanced_hash_map_keeps_assignment_and_bumps_version():
    shard_map = ShardMap(("g0", "g1", "g2"))
    rebalanced = shard_map.rebalanced()
    assert rebalanced.version == shard_map.version + 1
    assert shard_map.moved_keys(rebalanced, KEYS) == []
    with pytest.raises(ValueError):
        shard_map.rebalanced(boundaries=("m",))


def test_rebalanced_range_map_moves_keys():
    shard_map = ShardMap(("low", "high"), strategy="range", boundaries=("m",))
    rebalanced = shard_map.rebalanced(boundaries=("p",))
    assert rebalanced.version == 2
    moved = shard_map.moved_keys(rebalanced, ["a", "m", "n", "o", "p", "z"])
    assert moved == ["m", "n", "o"]  # now < "p", so they move low
    assert rebalanced.shard_for("n") == "low"
    assert shard_map.shard_for("n") == "high"


def test_describe_is_json_safe_and_versioned():
    shard_map = ShardMap(("g0", "g1"), strategy="range", boundaries=("m",))
    doc = shard_map.describe()
    assert doc == {
        "version": 1,
        "strategy": "range",
        "groups": ["g0", "g1"],
        "boundaries": ["m"],
    }


def test_value_semantics():
    a = ShardMap(("g0", "g1"))
    b = ShardMap(("g0", "g1"))
    assert a == b and hash(a) == hash(b)
    assert a != a.rebalanced()


def test_location_publish_requires_version_to_advance():
    location = LocationService()
    first = ShardMap(("g0", "g1"))
    location.publish_shard_map("kv", first)
    assert location.shard_map("kv") is first
    assert "kv" in location.shard_maps()
    with pytest.raises(ValueError):
        location.publish_shard_map("kv", ShardMap(("g0", "g1")))  # same v1
    newer = first.rebalanced()
    location.publish_shard_map("kv", newer)
    assert location.shard_map("kv") is newer
    with pytest.raises(ValueError):
        location.publish_shard_map("kv", first)  # stale republish
    with pytest.raises(KeyError):
        location.shard_map("unpublished")
