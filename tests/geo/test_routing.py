"""Geo-aware driver routing: sited drivers, nearest-* reads, geo_route."""

import pytest

from repro.config import GeoConfig, ProtocolConfig, ReadConfig, TraceConfig
from repro.geo.topology import symmetric_topology
from repro.harness.common import build_kv_system

TOPO = symmetric_topology(n_dcs=3, zones_per_dc=2, slots_per_zone=2)


def geo_config():
    return ProtocolConfig(
        reads=ReadConfig(enabled=True),
        geo=GeoConfig(topology=TOPO, placement="spread"),
    )


def build(driver_site, trace=None, seed=5):
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=5, config=geo_config(), trace=trace,
        driver_site=driver_site,
    )
    rt.run_for(400.0)  # settle: view formed, leases granted
    key = spec.key(0)
    outcome = driver.call("clients", "write", "kv", key, 42)
    rt.run_for(300.0)
    assert outcome.result().status == "committed"
    return rt, kv, driver, key


def read(rt, driver, key, **kwargs):
    future = driver.read("kv", key, **kwargs)
    rt.run_for(300.0)
    return future.result()


def test_driver_site_recorded_and_routing_armed():
    rt, _kv, driver, _key = build("dc-b/z1")
    assert driver.site == "dc-b/z1"
    assert rt.location.site_of(driver.address) == "dc-b/z1"


def test_siteless_driver_has_no_geo_routing():
    rt, _kv, driver, key = build(None)
    assert driver.site is None
    # "nearest" is still a valid preference; it degrades to the primary.
    result = read(rt, driver, key)
    assert result.ok and result.value == 42


def test_backup_read_served_from_local_datacenter():
    rt, kv, driver, key = build("dc-b/z1")
    result = read(rt, driver, key, prefer="backup", max_staleness=400.0)
    assert result.ok and result.value == 42
    assert result.mode == "backup"


def test_nearest_read_from_remote_site_uses_local_backup():
    rt, kv, driver, key = build("dc-b/z1")
    # With spread placement the primary (mid 0) is in dc-a; the nearest
    # member from dc-b is a local backup.
    assert kv.active_primary().mymid == 0
    result = read(rt, driver, key, prefer="nearest")
    assert result.ok and result.value == 42
    assert result.mode == "backup"


def test_nearest_read_from_primary_site_uses_lease():
    rt, _kv, driver, key = build("dc-a/z1")
    # The driver shares the primary's site: nearest member IS the primary
    # (ties go to the primary), so the read serves from its lease.
    result = read(rt, driver, key, prefer="nearest")
    assert result.ok and result.value == 42
    assert result.mode == "lease"


def test_invalid_prefer_rejected():
    rt, _kv, driver, key = build("dc-a/z1")
    with pytest.raises(ValueError):
        driver.read("kv", key, prefer="teleport")


def test_geo_route_trace_event_emitted():
    rt, _kv, driver, key = build("dc-b/z1", trace=TraceConfig())
    result = read(rt, driver, key, prefer="nearest")
    assert result.ok
    routes = [e for e in rt.tracer._ring if e.kind == "geo_route"]
    assert routes, "no geo_route event emitted"
    data = routes[-1].data
    assert data["site"] == "dc-b/z1"
    assert data["group"] == "kv"
    assert data["role"] == "backup"
    assert data["target_site"].startswith("dc-b/")
    assert data["prefer"] == "nearest"


def test_flat_network_emits_no_geo_route():
    rt, _kv, driver, key = _flat_build()
    result = read(rt, driver, key)
    assert result.ok
    routes = [e for e in rt.tracer._ring if e.kind == "geo_route"]
    assert routes == []


def _flat_build(seed=5):
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=5,
        config=ProtocolConfig(reads=ReadConfig(enabled=True)),
        trace=TraceConfig(),
    )
    rt.run_for(400.0)
    key = spec.key(0)
    outcome = driver.call("clients", "write", "kv", key, 42)
    rt.run_for(300.0)
    assert outcome.result().status == "committed"
    return rt, kv, driver, key
