"""Region-scale faults: partition_region, degrade_wan, nemesis rules."""

import pytest

from repro import EmptyModule, GeoConfig, Nemesis, ProtocolConfig, Runtime
from repro.geo.topology import symmetric_topology

TOPO = symmetric_topology(n_dcs=3, zones_per_dc=2, slots_per_zone=2)


def geo_runtime(seed=9, placement="spread"):
    rt = Runtime(
        seed=seed,
        config=ProtocolConfig(geo=GeoConfig(topology=TOPO, placement=placement)),
    )
    rt.create_group("kv", EmptyModule(), n_cohorts=5)
    return rt


# -- partition_region --------------------------------------------------------


def test_partition_region_isolates_one_datacenter():
    rt = geo_runtime()
    isolated = rt.faults.partition_region("dc-a")
    assert isolated == rt.faults.region_nodes("dc-a")
    assert set(isolated) == {"kv-n0", "kv-n3"}  # spread: mids 0, 3 in dc-a
    # Cross-region traffic is cut; intra-region and other-region traffic
    # (implicit leftover block) still flows.
    assert not rt.network.can_communicate("kv/0", "kv/1")
    assert rt.network.can_communicate("kv/1", "kv/2")  # dc-b <-> dc-c
    assert rt.network.can_communicate("kv/0", "kv/3")  # within dc-a
    assert rt.faults.count("region_partition") == 1


def test_partition_region_validates_region():
    rt = geo_runtime()
    with pytest.raises(ValueError):
        rt.faults.partition_region("mars")
    flat = Runtime(seed=9)
    with pytest.raises(ValueError, match="topology"):
        flat.faults.partition_region("dc-a")


def test_heal_all_restores_region_but_keeps_structure():
    rt = geo_runtime()
    structure_before = rt.network.structural_links()
    rt.faults.partition_region("dc-b")
    rt.faults.heal_all()
    assert rt.network.can_communicate("kv/0", "kv/1")
    assert not rt.network.disrupted()
    assert rt.network.structural_links() == structure_before


# -- degrade_wan / restore_wan -----------------------------------------------


def test_degrade_wan_touches_only_cross_dc_pairs():
    rt = geo_runtime()
    degraded = rt.faults.degrade_wan(factor=2.0, loss=0.1)
    assert degraded > 0
    overrides = rt.network.link_overrides()
    assert len(overrides) == degraded
    assert rt.network.disrupted()
    for (src, dst), model in overrides.items():
        src_dc = TOPO.dc_of(rt.location.site_of(src))
        dst_dc = TOPO.dc_of(rt.location.site_of(dst))
        assert src_dc != dst_dc
        assert model.base_delay == TOPO.cross_dc.base_delay * 2.0
        assert model.loss_probability == 0.1


def test_restore_wan_clears_all_overrides():
    rt = geo_runtime()
    rt.faults.degrade_wan()
    rt.faults.restore_wan()
    assert rt.network.link_overrides() == {}
    assert not rt.network.disrupted()
    assert rt.faults.count("restore_wan") == 1
    # Structure survives, and the WAN can be degraded again cleanly.
    assert rt.network.structural_links()
    assert rt.faults.degrade_wan() > 0


def test_degrade_wan_requires_topology():
    flat = Runtime(seed=9)
    with pytest.raises(ValueError, match="topology"):
        flat.faults.degrade_wan()


# -- nemesis rules -----------------------------------------------------------


def run_nemesis(seed, nemesis_builder, duration=3000.0):
    rt = geo_runtime(seed=seed)
    nemesis = nemesis_builder(Nemesis("geo-test"))
    rt.inject(nemesis)
    rt.run(until=duration)
    rt.faults.stop()
    return rt


def test_region_partition_rule_cuts_and_heals():
    rt = run_nemesis(
        13,
        lambda n: n.region_partition(region="dc-b", every=600.0,
                                     duration=200.0, count=2),
    )
    assert rt.faults.count("region_partition") == 2
    assert rt.network.partition_blocks() is None  # healed after each episode


def test_region_partition_rule_random_region_is_seeded():
    def regions(seed):
        rt = run_nemesis(
            seed,
            lambda n: n.region_partition(region="random", every=500.0,
                                         duration=150.0, count=3),
        )
        return [
            fault.target for fault in rt.faults.timeline
            if fault.kind == "region_partition"
        ]

    assert regions(21) == regions(21)  # same seed, same draw
    assert len(regions(21)) == 3


def test_wan_degradation_rule_alternates_and_restores():
    rt = run_nemesis(
        17,
        lambda n: n.wan_degradation(mean_healthy=400.0, mean_degraded=200.0,
                                    factor=2.0, loss=0.05),
    )
    assert rt.faults.count("wan_degradation") >= 1
    rt.faults.restore_wan()
    assert rt.network.link_overrides() == {}
