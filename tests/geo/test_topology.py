"""Topology: validation, site addressing, derived link-model tiers."""

import pytest

from repro.geo.topology import (
    CROSS_DC,
    INTRA_DC,
    INTRA_ZONE,
    Datacenter,
    Topology,
    Zone,
    symmetric_topology,
)
from repro.net.link import LinkModel


def two_dc():
    return Topology((
        Datacenter("east", (Zone("z1", slots=2), Zone("z2"))),
        Datacenter("west", (Zone("z1"),)),
    ))


# -- validation --------------------------------------------------------------


def test_zone_name_must_be_slash_free():
    with pytest.raises(ValueError):
        Zone("a/b")
    with pytest.raises(ValueError):
        Zone("")


def test_zone_needs_a_slot():
    with pytest.raises(ValueError):
        Zone("z1", slots=0)


def test_datacenter_needs_zones_and_unique_names():
    with pytest.raises(ValueError):
        Datacenter("dc", ())
    with pytest.raises(ValueError):
        Datacenter("dc", (Zone("z1"), Zone("z1")))
    with pytest.raises(ValueError):
        Datacenter("d/c", (Zone("z1"),))


def test_topology_rejects_duplicate_datacenters():
    dc = Datacenter("east", (Zone("z1"),))
    with pytest.raises(ValueError):
        Topology((dc, dc))
    with pytest.raises(ValueError):
        Topology(())


def test_pair_overrides_must_name_known_datacenters():
    with pytest.raises(ValueError):
        Topology(
            (Datacenter("east", (Zone("z1"),)),),
            pair_overrides={("east", "mars"): INTRA_DC},
        )


# -- site addressing ---------------------------------------------------------


def test_sites_and_dc_of():
    topo = two_dc()
    assert topo.sites() == ("east/z1", "east/z2", "west/z1")
    assert topo.has_site("east/z2")
    assert not topo.has_site("east/z9")
    assert topo.dc_of("west/z1") == "west"
    with pytest.raises(ValueError):
        topo.dc_of("mars/z1")


def test_sites_of_is_slot_weighted():
    topo = two_dc()
    # east/z1 has 2 slots: it appears twice in the placement cycle.
    assert topo.sites_of("east") == ("east/z1", "east/z1", "east/z2")
    assert topo.slot_count() == 4
    with pytest.raises(ValueError):
        topo.sites_of("mars")


# -- link tiers --------------------------------------------------------------


def test_link_between_tiers():
    topo = two_dc()
    assert topo.link_between("east/z1", "east/z1") is INTRA_ZONE
    assert topo.link_between("east/z1", "east/z2") is INTRA_DC
    assert topo.link_between("east/z1", "west/z1") is CROSS_DC
    with pytest.raises(ValueError):
        topo.link_between("east/z1", "mars/z1")


def test_pair_override_is_directional():
    fat_pipe = LinkModel(base_delay=4.0, jitter=1.0)
    topo = Topology(
        (
            Datacenter("east", (Zone("z1"),)),
            Datacenter("west", (Zone("z1"),)),
        ),
        pair_overrides={("east", "west"): fat_pipe},
    )
    assert topo.link_between("east/z1", "west/z1") is fat_pipe
    assert topo.link_between("west/z1", "east/z1") is CROSS_DC


def test_distance_is_base_delay():
    topo = two_dc()
    assert topo.distance("east/z1", "west/z1") == CROSS_DC.base_delay
    assert topo.distance("east/z1", "east/z2") == INTRA_DC.base_delay


def test_symmetric_topology_shape():
    topo = symmetric_topology(n_dcs=3, zones_per_dc=2, slots_per_zone=2)
    assert topo.dc_names() == ("dc-a", "dc-b", "dc-c")
    assert topo.sites_of("dc-b") == ("dc-b/z1", "dc-b/z1", "dc-b/z2", "dc-b/z2")
    assert topo.slot_count() == 12
    with pytest.raises(ValueError):
        symmetric_topology(n_dcs=0)


def test_describe_lists_zones_and_slots():
    assert two_dc().describe() == "east: z1(2), z2(1)\nwest: z1(1)"
