"""Placement policies: site assignment per mid, runtime integration."""

import pytest

from repro import EmptyModule, GeoConfig, ProtocolConfig, Runtime
from repro.geo.placement import (
    PrimaryAffinity,
    SingleDc,
    Spread,
    resolve_placement,
)
from repro.geo.topology import symmetric_topology

TOPO = symmetric_topology(n_dcs=3, zones_per_dc=2, slots_per_zone=2)


def dcs_of(sites):
    return [site.split("/", 1)[0] for site in sites]


# -- pure policy behaviour ---------------------------------------------------


def test_spread_round_robins_datacenters():
    sites = Spread().place(TOPO, "kv", 5)
    assert dcs_of(sites) == ["dc-a", "dc-b", "dc-c", "dc-a", "dc-b"]
    # Slot-weighted: dc-a's second visit still lands in z1 (2 slots).
    assert sites[0] == "dc-a/z1" and sites[3] == "dc-a/z1"


def test_spread_cursors_persist_across_groups():
    policy = Spread()
    for _ in range(2):  # consume both z1 slots in every DC
        policy.place(TOPO, "g", 3)
    third = policy.place(TOPO, "g3", 3)
    assert dcs_of(third) == ["dc-a", "dc-b", "dc-c"]
    assert third == ["dc-a/z2", "dc-b/z2", "dc-c/z2"]  # cursors advanced


def test_single_dc_pinned():
    sites = SingleDc("dc-b").place(TOPO, "kv", 3)
    assert dcs_of(sites) == ["dc-b", "dc-b", "dc-b"]
    with pytest.raises(ValueError):
        SingleDc("mars").place(TOPO, "kv", 3)


def test_single_dc_round_robins_whole_groups():
    policy = SingleDc()
    assert dcs_of(policy.place(TOPO, "g0", 3)) == ["dc-a"] * 3
    assert dcs_of(policy.place(TOPO, "g1", 3)) == ["dc-b"] * 3
    assert dcs_of(policy.place(TOPO, "g2", 3)) == ["dc-c"] * 3
    assert dcs_of(policy.place(TOPO, "g3", 3)) == ["dc-a"] * 3


def test_primary_affinity_places_bare_majority_in_region():
    sites = PrimaryAffinity("dc-b").place(TOPO, "kv", 5)
    # mids 0-2 (a bare majority, led by the initial primary) in dc-b,
    # the rest round-robin the other DCs.
    assert dcs_of(sites) == ["dc-b", "dc-b", "dc-b", "dc-a", "dc-c"]


def test_primary_affinity_small_group_and_unknown_region():
    assert dcs_of(PrimaryAffinity("dc-c").place(TOPO, "kv", 1)) == ["dc-c"]
    with pytest.raises(ValueError):
        PrimaryAffinity("mars").place(TOPO, "kv", 3)


def test_resolve_placement_specs():
    assert isinstance(resolve_placement("spread"), Spread)
    assert resolve_placement("single_dc").dc is None
    assert resolve_placement("single_dc:dc-b").dc == "dc-b"
    assert resolve_placement("primary_affinity:dc-a").region == "dc-a"
    policy = Spread()
    assert resolve_placement(policy) is policy
    for bad in ("primary_affinity", "spread:dc-a", "nope"):
        with pytest.raises(ValueError):
            resolve_placement(bad)


# -- runtime integration -----------------------------------------------------


def geo_runtime(placement, seed=11):
    return Runtime(
        seed=seed,
        config=ProtocolConfig(geo=GeoConfig(topology=TOPO, placement=placement)),
    )


def test_create_group_consults_placement():
    rt = geo_runtime("spread")
    kv = rt.create_group("kv", EmptyModule(), n_cohorts=5)
    sites = [rt.node_sites[f"kv-n{i}"] for i in range(5)]
    assert dcs_of(sites) == ["dc-a", "dc-b", "dc-c", "dc-a", "dc-b"]
    # Cohort addresses are registered with the location service.
    for mid in range(5):
        assert rt.location.site_of(kv.cohort(mid).address) == sites[mid]


def test_structural_links_installed_between_placed_nodes():
    rt = geo_runtime("spread")
    rt.create_group("kv", EmptyModule(), n_cohorts=3)
    links = rt.network.structural_links()
    # kv-n0 (dc-a/z1) -> kv-n1 (dc-b/z1) is a cross-DC pair, both ways.
    assert links[("kv-n0", "kv-n1")] is TOPO.cross_dc
    assert links[("kv-n1", "kv-n0")] is TOPO.cross_dc
    assert not rt.network.disrupted()


def test_sharded_group_lands_one_shard_per_dc():
    rt = geo_runtime("single_dc")
    rt.sharded_group("bank", n_shards=3, n_cohorts=3)
    for shard, dc in (("bank-s0", "dc-a"), ("bank-s1", "dc-b"),
                      ("bank-s2", "dc-c")):
        shard_dcs = {
            TOPO.dc_of(rt.node_sites[f"{shard}-n{i}"]) for i in range(3)
        }
        assert shard_dcs == {dc}


def test_explicit_site_requires_known_site():
    rt = geo_runtime("spread")
    with pytest.raises(ValueError):
        rt.create_node("loner", site="mars/z1")
    flat = Runtime(seed=11)
    with pytest.raises(ValueError):
        flat.create_node("loner", site="dc-a/z1")  # no topology armed


def test_flat_runtime_places_nothing():
    rt = Runtime(seed=11)
    rt.create_group("kv", EmptyModule(), n_cohorts=3)
    assert rt.node_sites == {}
    assert rt.network.structural_links() == {}
