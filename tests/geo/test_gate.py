"""The E20 gate cell and the geo docs-drift CLI."""

import pathlib

from repro.geo.__main__ import main as geo_main
from repro.harness.experiments_geo import _geo_state_run

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_state_run_is_deterministic_and_placement_invariant():
    flat = _geo_state_run(77, None, txns=8)
    again = _geo_state_run(77, None, txns=8)
    spread = _geo_state_run(77, "spread", txns=8)
    assert flat == again  # same seed, same run -- metrics and digest
    metrics, digest = flat
    assert metrics["writes_committed"] == 8
    # Geography reshapes transport, never the replicated state.
    assert spread[1] == digest
    assert spread[0]["writes_committed"] == 8


def test_check_docs_passes_on_shipped_doc(capsys):
    doc = REPO_ROOT / "docs" / "GEO.md"
    assert geo_main(["check-docs", str(doc)]) == 0
    assert "documents all" in capsys.readouterr().out


def test_check_docs_fails_on_incomplete_doc(tmp_path, capsys):
    doc = tmp_path / "GEO.md"
    doc.write_text("# geography\n\nnothing relevant here\n")
    assert geo_main(["check-docs", str(doc)]) == 1
    assert "missing documentation" in capsys.readouterr().err


def test_check_docs_unreadable_doc(tmp_path):
    assert geo_main(["check-docs", str(tmp_path / "missing.md")]) == 2
