"""LocationService edges: stale views, tolerant batch lookups, site
registration permanence (satellite coverage for geo routing)."""

import pytest

from repro.core import View
from repro.location import GroupNotFound, LocationService
from repro.geo.topology import symmetric_topology

TOPO = symmetric_topology(n_dcs=2, zones_per_dc=1, slots_per_zone=2)


def service():
    svc = LocationService()
    svc.register("kv", ((0, "kv/0"), (1, "kv/1"), (2, "kv/2")))
    return svc


# -- primary_address during an in-progress view change -----------------------


def test_primary_address_with_no_view_yet():
    """Before a view forms (or mid view change), the driver holds view
    None; the lookup must degrade to None, not raise."""
    assert service().primary_address("kv", None) is None


def test_primary_address_with_unregistered_primary():
    """A view naming a mid outside the registered configuration (e.g. a
    stale cached view raced with reconfiguration) resolves to None."""
    svc = service()
    assert svc.primary_address("kv", View(primary=7, backups=(0, 1))) is None
    assert svc.primary_address("kv", View(primary=1, backups=(0, 2))) == "kv/1"


def test_primary_address_for_unknown_group():
    assert service().primary_address("nope", View(primary=0, backups=(1,))) is None


# -- lookup_many strictness ---------------------------------------------------


def test_lookup_many_tolerant_omits_unknown_groups():
    svc = service()
    svc.register("bank", ((0, "bank/0"),))
    found = svc.lookup_many(["kv", "ghost", "bank"], strict=False)
    assert set(found) == {"kv", "bank"}
    assert found["bank"] == ((0, "bank/0"),)


def test_lookup_many_strict_raises_on_first_missing():
    svc = service()
    with pytest.raises(GroupNotFound) as exc:
        svc.lookup_many(["kv", "ghost", "also-missing"], strict=True)
    assert exc.value.groupid == "ghost"


# -- site registration --------------------------------------------------------


def test_duplicate_site_registration_rejected():
    svc = service()
    svc.attach_topology(TOPO)
    svc.register_site("kv/0", "dc-a/z1")
    with pytest.raises(ValueError, match="permanent"):
        svc.register_site("kv/0", "dc-b/z1")
    assert svc.site_of("kv/0") == "dc-a/z1"


def test_register_site_validates_against_topology():
    svc = service()
    svc.attach_topology(TOPO)
    with pytest.raises(ValueError, match="unknown site"):
        svc.register_site("kv/0", "mars/z1")


def test_attach_topology_rejects_replacement():
    svc = service()
    svc.attach_topology(TOPO)
    svc.attach_topology(TOPO)  # same object is idempotent
    with pytest.raises(ValueError):
        svc.attach_topology(symmetric_topology(n_dcs=3))


# -- nearest-* routing edges --------------------------------------------------


def geo_service():
    svc = service()
    svc.attach_topology(TOPO)
    svc.register_site("kv/0", "dc-a/z1")
    svc.register_site("kv/1", "dc-b/z1")
    svc.register_site("kv/2", "dc-b/z1")
    return svc


def test_nearest_backup_prefers_local_replica():
    svc = geo_service()
    view = View(primary=0, backups=(1, 2))
    assert svc.nearest_backup("kv", view, "dc-b/z1") == "kv/1"  # mid tiebreak
    assert svc.nearest_backup("kv", view, "dc-a/z1") is not None


def test_nearest_backup_degrades_to_none():
    svc = geo_service()
    assert svc.nearest_backup("ghost", View(0, (1,)), "dc-a/z1") is None
    assert svc.nearest_backup("kv", None, "dc-a/z1") is None
    # A view whose backups are all unregistered mids: nothing to serve.
    assert svc.nearest_backup("kv", View(primary=0, backups=(8, 9)),
                              "dc-a/z1") is None


def test_nearest_member_primary_wins_ties():
    svc = geo_service()
    view = View(primary=1, backups=(0, 2))
    # From dc-b both kv/1 (primary) and kv/2 are equidistant: primary wins.
    assert svc.nearest_member("kv", view, "dc-b/z1") == "kv/1"
    # From dc-a the lone local replica beats the remote primary.
    assert svc.nearest_member("kv", view, "dc-a/z1") == "kv/0"


def test_nearest_member_without_site_degrades_to_primary():
    svc = geo_service()
    view = View(primary=2, backups=(0, 1))
    assert svc.nearest_member("kv", view, None) == "kv/2"
