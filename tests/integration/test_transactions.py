"""End-to-end transaction processing in the failure-free case."""


from repro import EmptyModule, Runtime, transaction_program
from repro.workloads.bank import (
    BankAccountsSpec,
    audit_program,
    cross_bank_transfer_program,
)

from tests.conftest import total_balance


def submit_and_run(rt, driver, group, program, *args, time=400):
    future = driver.submit(group, program, *args)
    rt.run_for(time)
    assert future.done, "transaction did not resolve in time"
    return future.result()


def test_single_call_commit(counter_system):
    rt, counter, _clients, driver = counter_system
    outcome, result = submit_and_run(rt, driver, "clients", "bump", 5)
    assert outcome == "committed"
    assert result == 5
    assert counter.read_object("count") == 5


def test_sequential_transactions_accumulate(counter_system):
    rt, counter, _clients, driver = counter_system
    for index in range(5):
        outcome, result = submit_and_run(rt, driver, "clients", "bump", 1)
        assert outcome == "committed"
        assert result == index + 1
    assert counter.read_object("count") == 5


def test_read_only_transaction(counter_system):
    rt, _counter, _clients, driver = counter_system
    submit_and_run(rt, driver, "clients", "bump", 9)
    outcome, result = submit_and_run(rt, driver, "clients", "read")
    assert outcome == "committed"
    assert result == 9


def test_read_only_skips_phase_two(counter_system):
    """Read-only participants commit at prepare: no CommitMsg is sent."""
    rt, _counter, _clients, driver = counter_system
    submit_and_run(rt, driver, "clients", "read")
    assert rt.metrics.messages_sent.get("CommitMsg", 0) == 0
    assert rt.metrics.messages_sent.get("PrepareMsg", 0) >= 1


def test_write_transaction_runs_phase_two(counter_system):
    rt, _counter, _clients, driver = counter_system
    submit_and_run(rt, driver, "clients", "bump", 1)
    assert rt.metrics.messages_sent.get("CommitMsg", 0) >= 1
    assert rt.metrics.messages_sent.get("CommitAckMsg", 0) >= 1


def test_application_abort_propagates(bank_system):
    rt, bank, _clients, driver = bank_system
    # Withdraw more than the balance: the procedure raises, the txn aborts.
    outcome, _ = submit_and_run(rt, driver, "clients", "transfer", "a", "b", 10_000)
    assert outcome == "aborted"
    assert bank.read_object("a") == 100
    assert bank.read_object("b") == 100


def test_aborted_transaction_leaves_no_locks(bank_system):
    rt, bank, _clients, driver = bank_system
    submit_and_run(rt, driver, "clients", "transfer", "a", "b", 10_000)
    rt.quiesce()
    primary = bank.active_primary()
    for account in ("a", "b", "c"):
        assert primary.lockmgr.holders_of(account) == {}


def test_transfer_conserves_money(bank_system):
    rt, bank, _clients, driver = bank_system
    for _ in range(4):
        outcome, _ = submit_and_run(rt, driver, "clients", "transfer", "a", "b", 10)
        assert outcome == "committed"
    assert bank.read_object("a") == 60
    assert bank.read_object("b") == 140
    assert total_balance(bank, ("a", "b", "c")) == 300


def test_multi_group_two_phase_commit():
    """A transaction spanning two replicated groups commits atomically."""
    rt = Runtime(seed=21)
    east = rt.create_group("east", BankAccountsSpec(2, 100, prefix="e"), n_cohorts=3)
    west = rt.create_group("west", BankAccountsSpec(2, 100, prefix="w"), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("xfer", cross_bank_transfer_program)
    driver = rt.create_driver("driver")
    outcome, _ = submit_and_run(rt, driver, "clients", "xfer",
                                "east", "e0", "west", "w1", 30)
    assert outcome == "committed"
    assert east.read_object("e0") == 70
    assert west.read_object("w1") == 130
    rt.quiesce()
    rt.check_invariants()


def test_multi_group_abort_is_atomic():
    """If one participant's procedure aborts, neither group changes."""
    rt = Runtime(seed=22)
    east = rt.create_group("east", BankAccountsSpec(2, 10, prefix="e"), n_cohorts=3)
    west = rt.create_group("west", BankAccountsSpec(2, 10, prefix="w"), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)

    @transaction_program
    def doomed(txn):
        yield txn.call("west", "deposit", "w0", 5)  # succeeds first...
        yield txn.call("east", "withdraw", "e0", 999)  # ...then aborts
        return "unreachable"

    clients.register_program("doomed", doomed)
    driver = rt.create_driver("driver")
    outcome, _ = submit_and_run(rt, driver, "clients", "doomed")
    assert outcome == "aborted"
    rt.quiesce()
    assert west.read_object("w0") == 10  # the first call's effect discarded
    assert east.read_object("e0") == 10


def test_empty_transaction_commits(counter_system):
    rt, _counter, clients, driver = counter_system

    @transaction_program
    def noop(txn):
        return "did nothing"
        yield  # pragma: no cover - marks this as a generator

    clients.register_program("noop", noop)
    outcome, result = submit_and_run(rt, driver, "clients", "noop")
    assert outcome == "committed"
    assert result == "did nothing"
    assert rt.metrics.messages_sent.get("PrepareMsg", 0) == 0


def test_program_driven_abort(counter_system):
    rt, counter, clients, driver = counter_system

    @transaction_program
    def change_mind(txn):
        yield txn.call("counter", "increment", 50)
        txn.abort("changed my mind")

    clients.register_program("change_mind", change_mind)
    outcome, _ = submit_and_run(rt, driver, "clients", "change_mind")
    assert outcome == "aborted"
    rt.quiesce()
    assert counter.read_object("count") == 0


def test_unknown_program_rejected(counter_system):
    rt, _counter, _clients, driver = counter_system
    future = driver.submit("clients", "no_such_program", retries=0)
    rt.run_for(500)
    # The client primary fails the transaction; the driver sees a timeout.
    assert future.done


def test_unknown_procedure_aborts(counter_system):
    rt, _counter, clients, driver = counter_system

    @transaction_program
    def bad_call(txn):
        yield txn.call("counter", "no_such_proc")

    clients.register_program("bad_call", bad_call)
    outcome, _ = submit_and_run(rt, driver, "clients", "bad_call")
    assert outcome == "aborted"


def test_audit_reads_consistent_snapshot(bank_system):
    rt, _bank, clients, driver = bank_system
    clients.register_program("audit", audit_program)
    for _ in range(3):
        submit_and_run(rt, driver, "clients", "transfer", "a", "c", 7)
    outcome, result = submit_and_run(
        rt, driver, "clients", "audit", "bank", ["a", "b", "c"]
    )
    assert outcome == "committed"
    assert result == 300


def test_pset_travels_in_prepare(counter_system):
    """The prepare message carries a pset pair for each participant call."""
    rt, counter, _clients, driver = counter_system
    submit_and_run(rt, driver, "clients", "bump", 2)
    # The committed record at the counter primary carries the pset pairs.
    primary = counter.active_primary()
    committed_aids = [a for a, o in primary.outcomes.items() if o == "committed"]
    assert committed_aids


def test_metrics_track_txn_outcomes(counter_system):
    rt, _counter, _clients, driver = counter_system
    submit_and_run(rt, driver, "clients", "bump", 2)
    assert rt.metrics.counters["txns_started:clients"] == 1
    assert rt.metrics.counters["txns_committed:clients"] == 1
    assert rt.ledger.commit_count == 1
    assert rt.ledger.abort_count == 0


def test_replicas_converge_after_commits(counter_system):
    rt, counter, _clients, driver = counter_system
    for _ in range(3):
        submit_and_run(rt, driver, "clients", "bump", 3)
    rt.quiesce()
    assert counter.converged()
    for cohort in counter.active_cohorts():
        assert cohort.store.get("count").base == 9
