"""Property-based end-to-end tests: random schedules, invariants always hold.

Each hypothesis example builds a fresh simulated system, runs a randomized
transfer workload under a randomized failure schedule, and asserts the
safety battery.  Examples are kept small so the suite stays fast; the
deeper (longer) randomized coverage lives in test_chaos.py.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import EmptyModule, Runtime
from repro.workloads.bank import BankAccountsSpec, transfer_program
from repro.workloads.bank import total_balance as spec_total
from repro.workloads.loadgen import run_closed_loop


failure_plans = st.lists(
    st.tuples(
        st.floats(50.0, 400.0),      # when (relative to previous event)
        st.sampled_from(["crash0", "crash1", "crash2", "recover", "partition",
                         "heal"]),
    ),
    max_size=6,
)

transfer_plans = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 20)),
    min_size=1,
    max_size=10,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    transfers=transfer_plans,
    failures=failure_plans,
)
def test_random_schedule_preserves_invariants(seed, transfers, failures):
    rt = Runtime(seed=seed)
    spec = BankAccountsSpec(n_accounts=4, opening_balance=100)
    bank = rt.create_group("bank", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("transfer", transfer_program)
    driver = rt.create_driver("driver")

    jobs = [
        ("transfer", ("bank", spec.account(src), spec.account(dst), amount))
        for src, dst, amount in transfers
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=2)

    # Apply the failure plan on a timeline.
    at = 0.0
    down = set()
    node_ids = [node.node_id for node in bank.nodes()]
    for delay, action in failures:
        at += delay
        if action.startswith("crash"):
            mid = int(action[-1])
            if len(down) < 1:  # keep a majority alive
                rt.sim.schedule(at, bank.cohorts[mid].node.crash)
                down.add(mid)
        elif action == "recover":
            for mid in list(down):
                rt.sim.schedule(at, bank.cohorts[mid].node.recover)
            down.clear()
        elif action == "partition":
            rt.sim.schedule(
                at, rt.network.partition, [{node_ids[0]}, set(node_ids[1:])]
            )
        elif action == "heal":
            rt.sim.schedule(at, rt.network.heal)

    deadline = 30_000
    while stats.submitted < len(jobs) and rt.sim.now < deadline:
        rt.run_for(500)
    rt.network.heal()
    for mid in list(down):
        bank.cohorts[mid].node.recover()
    rt.run_for(2000)
    rt.quiesce()

    # Safety battery: 1SR, no contradictory outcomes, conservation.
    rt.check_invariants(require_convergence=False)
    if bank.active_primary() is not None:
        assert spec_total(bank, spec) == 400
        problems = bank.divergence_report()
        assert not problems, problems


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_cohorts=st.sampled_from([1, 3, 5]),
    amounts=st.lists(st.integers(1, 30), min_size=1, max_size=6),
)
def test_failure_free_transfers_always_commit(seed, n_cohorts, amounts):
    """Without failures, every well-funded transfer commits, at any
    replication factor, and the books balance exactly."""
    rt = Runtime(seed=seed)
    spec = BankAccountsSpec(n_accounts=2, opening_balance=1000)
    bank = rt.create_group("bank", spec, n_cohorts=n_cohorts)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=n_cohorts)
    clients.register_program("transfer", transfer_program)
    driver = rt.create_driver("driver")
    jobs = [
        ("transfer", ("bank", spec.account(0), spec.account(1), amount))
        for amount in amounts
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=1)
    while stats.submitted < len(jobs) and rt.sim.now < 20_000:
        rt.run_for(500)
    rt.quiesce()
    assert stats.committed == len(amounts)
    assert bank.read_object(spec.account(0)) == 1000 - sum(amounts)
    assert bank.read_object(spec.account(1)) == 1000 + sum(amounts)
    rt.check_invariants()
