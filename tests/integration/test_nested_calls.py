"""Nested remote calls: a server calling another server mid-procedure.

Section 3: "in processing a call, a server may make further calls", and
Figure 3: "If it makes any nested calls, process them as described in
Figure 2" -- the nested call's pset pairs flow back through the reply so
the coordinator prepares *every* group the transaction touched.
"""


from repro import EmptyModule, ModuleSpec, Runtime, procedure, transaction_program
from repro.app.context import TransactionAborted


class FrontSpec(ModuleSpec):
    """A service that delegates to a backing store group."""

    def initial_objects(self):
        return {"requests": 0}

    @procedure
    def cached_incr(self, ctx, key, amount):
        count = yield ctx.read_for_update("requests")
        yield ctx.write("requests", count + 1)
        result = yield ctx.call("store", "incr", key, amount)  # nested call
        return result

    @procedure
    def fanout(self, ctx, keys):
        total = 0
        for key in keys:
            value = yield ctx.call("store", "incr", key, 1)
            total += value
        return total

    @procedure
    def guarded_incr(self, ctx, key, amount, limit):
        value = yield ctx.call("store", "incr", key, amount)
        if value > limit:
            raise TransactionAborted(f"limit exceeded: {value} > {limit}")
        return value


class StoreSpec(ModuleSpec):
    def initial_objects(self):
        return {"k0": 0, "k1": 0}

    @procedure
    def incr(self, ctx, key, amount):
        value = yield ctx.read_for_update(key)
        yield ctx.write(key, value + amount)
        return value + amount


@transaction_program
def via_front(txn, proc, *args):
    result = yield txn.call("front", proc, *args)
    return result


def build(seed=201):
    rt = Runtime(seed=seed)
    front = rt.create_group("front", FrontSpec(), n_cohorts=3)
    store = rt.create_group("store", StoreSpec(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("via_front", via_front)
    driver = rt.create_driver("driver")
    return rt, front, store, driver


def test_nested_call_commits_both_groups():
    rt, front, store, driver = build()
    future = driver.submit("clients", "via_front", "cached_incr", "k0", 5)
    rt.run_for(800)
    assert future.result() == ("committed", 5)
    rt.quiesce()
    assert front.read_object("requests") == 1
    assert store.read_object("k0") == 5
    rt.check_invariants()


def test_nested_pset_reaches_coordinator():
    """The prepare fan-out must include the *nested* participant."""
    rt, front, store, driver = build()
    future = driver.submit("clients", "via_front", "cached_incr", "k0", 1)
    rt.run_for(800)
    assert future.result()[0] == "committed"
    # Both groups saw a prepare (accepted counters are per-group).
    assert rt.metrics.counters.get("prepares_accepted:front", 0) == 1
    assert rt.metrics.counters.get("prepares_accepted:store", 0) == 1


def test_nested_fanout_multiple_calls():
    rt, front, store, driver = build()
    future = driver.submit("clients", "via_front", "fanout", ["k0", "k1"])
    rt.run_for(1500)
    assert future.result() == ("committed", 2)
    rt.quiesce()
    assert store.read_object("k0") == 1
    assert store.read_object("k1") == 1


def test_abort_after_nested_call_rolls_back_everywhere():
    rt, front, store, driver = build()
    future = driver.submit("clients", "via_front", "guarded_incr", "k0", 100, 10)
    rt.run_for(1500)
    assert future.result()[0] == "aborted"
    rt.quiesce(duration=2000)
    assert store.read_object("k0") == 0  # nested effect discarded
    assert front.read_object("requests") == 0


def test_nested_call_survives_store_backup_crash():
    rt, front, store, driver = build(seed=202)
    store.cohort(2).node.crash()  # a backup of the nested participant
    future = driver.submit("clients", "via_front", "cached_incr", "k1", 3)
    rt.run_for(2000)
    assert future.result()[0] == "committed"
    rt.quiesce(duration=800)
    assert store.read_object("k1") == 3
    rt.check_invariants(require_convergence=False)


def test_deeply_nested_three_hop():
    """client -> front -> middle -> store: psets chain through two hops."""

    class MiddleSpec(ModuleSpec):
        @procedure
        def relay(self, ctx, key, amount):
            result = yield ctx.call("store", "incr", key, amount)
            return result

    class Front2Spec(ModuleSpec):
        @procedure
        def entry(self, ctx, key, amount):
            result = yield ctx.call("middle", "relay", key, amount)
            return result

    rt = Runtime(seed=203)
    rt.create_group("front", Front2Spec(), n_cohorts=3)
    rt.create_group("middle", MiddleSpec(), n_cohorts=3)
    store = rt.create_group("store", StoreSpec(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("via_front", via_front)
    driver = rt.create_driver("driver")
    future = driver.submit("clients", "via_front", "entry", "k0", 7)
    rt.run_for(2000)
    assert future.result() == ("committed", 7)
    rt.quiesce()
    assert store.read_object("k0") == 7
    # All three groups are 2PC participants.
    for group in ("front", "middle", "store"):
        assert rt.metrics.counters.get(f"prepares_accepted:{group}", 0) == 1
    rt.check_invariants()
