"""Concurrent transactions: locking, serializability, deadlock breaking."""


from repro import EmptyModule, Runtime, transaction_program
from repro.analysis.serializability import SerializabilityChecker
from repro.workloads.kv import KVStoreSpec
from repro.workloads.loadgen import run_closed_loop

from tests.conftest import build_bank_system


def build_kv(seed=61, n_keys=8):
    rt = Runtime(seed=seed)
    spec = KVStoreSpec(n_keys=n_keys)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    driver = rt.create_driver("driver")
    return rt, kv, clients, driver, spec


def test_concurrent_increments_serialize():
    rt, kv, clients, driver, spec = build_kv()

    @transaction_program
    def incr(txn, key):
        result = yield txn.call("kv", "incr", key)
        return result

    clients.register_program("incr", incr)
    futures = [driver.submit("clients", "incr", spec.key(0)) for _ in range(6)]
    rt.run_for(3000)
    outcomes = [f.result() for f in futures if f.done]
    committed = [o for o in outcomes if o[0] == "committed"]
    # All increments on one key serialize through the write lock
    # (incr takes the lock via read_for_update, so no upgrade deadlock);
    # the final value equals the number of commits (no lost updates).
    rt.quiesce()
    assert kv.read_object(spec.key(0)) == len(committed)
    assert len(committed) >= 4  # most should get through


def test_upgrade_deadlock_no_lost_updates():
    """Read-then-write increments upgrade-deadlock under contention: most
    abort, but the survivors' updates are never lost."""
    from repro import ModuleSpec, procedure

    class NaiveCounter(ModuleSpec):
        def initial_objects(self):
            return {"n": 0}

        @procedure
        def incr(self, ctx):
            value = yield ctx.read("n")  # shared lock first: deadlock bait
            yield ctx.write("n", value + 1)
            return value + 1

    rt = Runtime(seed=66)
    kv = rt.create_group("kv", NaiveCounter(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)

    @transaction_program
    def incr(txn):
        result = yield txn.call("kv", "incr")
        return result

    clients.register_program("incr", incr)
    driver = rt.create_driver("driver")
    futures = [driver.submit("clients", "incr") for _ in range(5)]
    rt.run_for(5000)
    rt.quiesce()
    committed = [f for f in futures if f.done and f.result()[0] == "committed"]
    assert kv.read_object("n") == len(committed)  # no lost updates, ever
    rt.check_invariants(require_convergence=False)


def test_concurrent_disjoint_writes_all_commit():
    rt, kv, clients, driver, spec = build_kv()

    @transaction_program
    def put(txn, key, value):
        result = yield txn.call("kv", "put", key, value)
        return result

    clients.register_program("put", put)
    futures = [
        driver.submit("clients", "put", spec.key(i), i * 10) for i in range(8)
    ]
    rt.run_for(2000)
    assert all(f.result()[0] == "committed" for f in futures)
    rt.quiesce()
    for i in range(8):
        assert kv.read_object(spec.key(i)) == i * 10


def test_writer_blocks_reader_until_commit():
    rt, kv, clients, driver, spec = build_kv()
    from repro.sim.process import sleep

    order = []

    @transaction_program
    def slow_writer(txn):
        yield txn.call("kv", "put", spec.key(0), 99)
        order.append(("writer-wrote", rt.sim.now))
        yield sleep(60.0)  # hold the lock, but shorter than client patience
        return "w"

    @transaction_program
    def reader(txn):
        value = yield txn.call("kv", "get", spec.key(0))
        order.append(("reader-read", rt.sim.now, value))
        return value

    clients.register_program("slow_writer", slow_writer)
    clients.register_program("reader", reader)
    wf = driver.submit("clients", "slow_writer")
    rt.run_for(50)
    rf = driver.submit("clients", "reader")
    rt.run_for(2000)
    assert wf.result()[0] == "committed"
    assert rf.result() == ("committed", 99)  # reader saw the committed value
    # The read completed only after the writer's commit released the lock.
    wrote_at = next(entry[1] for entry in order if entry[0] == "writer-wrote")
    read_at = next(entry[1] for entry in order if entry[0] == "reader-read")
    assert read_at > wrote_at + 60.0


def test_deadlock_broken_by_timeout():
    """Two transactions locking (a, b) in opposite order deadlock; the
    lock timeout aborts at least one and the other commits."""
    from repro.config import ProtocolConfig

    # A short lock timeout lets the deadlock breaker fire before the
    # clients' own call timeouts abort both transactions.
    rt, bank, clients, driver = build_bank_system(
        seed=62, config=ProtocolConfig(lock_timeout=60.0)
    )
    from repro.sim.process import sleep

    @transaction_program
    def lock_ab(txn):
        yield txn.call("bank", "deposit", "a", 1)
        yield sleep(30.0)
        yield txn.call("bank", "deposit", "b", 1)
        return "ab"

    @transaction_program
    def lock_ba(txn):
        yield txn.call("bank", "deposit", "b", 1)
        yield sleep(30.0)
        yield txn.call("bank", "deposit", "a", 1)
        return "ba"

    clients.register_program("lock_ab", lock_ab)
    clients.register_program("lock_ba", lock_ba)
    f1 = driver.submit("clients", "lock_ab")
    f2 = driver.submit("clients", "lock_ba")
    rt.run_for(6000)
    outcomes = {f1.result()[0], f2.result()[0]}
    assert "committed" in outcomes  # at least one wins
    assert "aborted" in outcomes  # and the deadlock victim died
    rt.quiesce()
    rt.check_invariants(require_convergence=False)


def test_read_locks_shared():
    rt, kv, clients, driver, spec = build_kv()

    @transaction_program
    def read_key(txn):
        value = yield txn.call("kv", "get", spec.key(0))
        return value

    clients.register_program("read_key", read_key)
    futures = [driver.submit("clients", "read_key") for _ in range(5)]
    rt.run_for(600)
    assert all(f.result()[0] == "committed" for f in futures)


def test_random_mix_is_serializable():
    """Randomized contended workload: the committed history must be 1SR
    and the counters must reflect exactly the committed increments."""
    rt, kv, clients, driver, spec = build_kv(seed=63, n_keys=4)

    @transaction_program
    def move(txn, src, dst):
        value = yield txn.call("kv", "incr", src, 1)
        yield txn.call("kv", "incr", dst, -1)
        return value

    clients.register_program("move", move)
    rng = rt.sim.rng.fork("mix")
    jobs = [
        ("move", (spec.key(rng.randint(0, 3)), spec.key(rng.randint(0, 3))))
        for _ in range(30)
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=3)
    deadline = rt.sim.now + 60_000
    while stats.submitted < 30 and rt.sim.now < deadline:
        rt.run_for(500)
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
    total = sum(kv.read_object(spec.key(i)) for i in range(4))
    assert total == 0  # every committed move is balanced


def test_serializability_checker_sees_committed_effects():
    rt, kv, clients, driver, spec = build_kv(seed=64)

    @transaction_program
    def put(txn, key, value):
        result = yield txn.call("kv", "put", key, value)
        return result

    clients.register_program("put", put)
    f = driver.submit("clients", "put", spec.key(0), 1)
    rt.run_for(400)
    assert f.result()[0] == "committed"
    rt.quiesce()
    transactions = rt.ledger.committed_transactions()
    assert len(transactions) == 1
    assert ("kv", spec.key(0)) in transactions[0].writes
    SerializabilityChecker(transactions).check()
