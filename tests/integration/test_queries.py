"""The query protocol (section 3.4): outcome discovery after lost messages."""


from repro.txn.ids import Aid
from repro.core.viewstamp import ViewId

from tests.conftest import build_counter_system


def test_participant_learns_commit_via_query():
    """Drop every CommitMsg: the participant's janitor queries the
    coordinator group and installs the commit anyway."""
    from repro.net.link import LinkModel

    rt, counter, clients, driver = __import__(
        "tests.conftest", fromlist=["build_counter_system"]
    ).build_counter_system(seed=91)
    # Sever commit traffic: clients primary -> counter primary.
    dead = LinkModel(base_delay=1.0, jitter=0.0, loss_probability=0.999999)
    # We don't know which address sends commits until runtime; instead drop
    # CommitMsg system-wide by monkeypatching is heavy -- use link override
    # for the specific pair after cache warmup.
    future = driver.submit("clients", "bump", 5)
    rt.run_for(60)  # calls done, prepare in flight; commit not yet sent
    clients_primary = rt.groups["clients"].active_primary()
    counter_primary = counter.active_primary()
    # Now blackhole the commit path (prepare already went through).
    rt.network.set_link_model(clients_primary.address, counter_primary.address, dead)
    rt.run_for(3000)
    # The coordinator reported commit (force succeeded), but its CommitMsg
    # never arrived; the participant recovers the outcome by querying.
    assert future.result()[0] == "committed"
    rt.network.set_link_model(
        clients_primary.address, counter_primary.address, rt.network.link
    )
    rt.run_for(2000)
    rt.quiesce()
    assert counter.read_object("count") == 5
    rt.check_invariants()


def test_participant_learns_abort_via_query():
    """Drop every AbortMsg: locks are eventually freed through queries."""
    rt, counter, clients, driver = build_and_warm(seed=92)
    from repro import transaction_program

    @transaction_program
    def change_mind(txn):
        yield txn.call("counter", "increment", 50)
        txn.abort("nope")

    clients.register_program("change_mind", change_mind)
    clients_primary = rt.groups["clients"].active_primary()
    counter_primary = counter.active_primary()
    # Blackhole coordinator -> participant (abort messages will be lost)
    # only after the call completes; do it via a scheduled link override.
    from repro.net.link import LinkModel

    dead = LinkModel(base_delay=1.0, jitter=0.0, loss_probability=0.999999)
    future = driver.submit("clients", "change_mind")
    rt.run_for(10)  # call sent; reply pending
    rt.network.set_link_model(clients_primary.address, counter_primary.address, dead)
    rt.run_for(100)
    assert future.done and future.result()[0] == "aborted"
    # Locks still held at the participant (the abort message was dropped).
    rt.run_for(3000)  # janitor query -> "aborted" -> cleanup
    assert counter_primary.lockmgr.holders_of("count") == {}
    assert counter.read_object("count") == 0


def build_and_warm(seed):
    from tests.conftest import build_counter_system

    rt, counter, clients, driver = build_counter_system(seed=seed)
    future = driver.submit("clients", "bump", 0)
    rt.run_for(300)
    assert future.result()[0] == "committed"
    return rt, counter, clients, driver


def test_query_outcome_committed(counter_system):
    rt, counter, clients, driver = counter_system
    future = driver.submit("clients", "bump", 1)
    rt.run_for(400)
    assert future.result()[0] == "committed"
    rt.quiesce()
    aid = next(iter(rt.ledger.committed))
    primary = counter.active_primary()
    outcome, _pairs = primary.query_outcome(aid)
    assert outcome == "committed"


def test_query_outcome_unknown_for_foreign_aid(counter_system):
    rt, counter, _clients, _driver = counter_system
    primary = counter.active_primary()
    foreign = Aid("someone-else", ViewId(1, 0), 99)
    outcome, _ = primary.query_outcome(foreign)
    assert outcome == "unknown"


def test_query_inference_old_view_aborted(counter_system):
    """A coordinator-group primary infers 'aborted' for an unknown aid born
    in an older view of its own group."""
    rt, counter, clients, driver = counter_system
    clients.crash_primary()
    rt.run_for(800)
    new_primary = clients.active_primary()
    assert new_primary is not None
    old_aid = Aid("clients", ViewId(1, 0), 12345)  # born in the old view
    outcome, _ = new_primary.query_outcome(old_aid)
    assert outcome == "aborted"


def test_backups_do_not_infer_aborts(counter_system):
    """Only the primary makes the old-view inference (see DESIGN.md)."""
    rt, counter, clients, driver = counter_system
    clients.crash_primary()
    rt.run_for(800)
    new_primary = clients.active_primary()
    backup_mid = new_primary.cur_view.backups[0]
    backup = clients.cohort(backup_mid)
    old_aid = Aid("clients", ViewId(1, 0), 12345)
    outcome, _ = backup.query_outcome(old_aid)
    assert outcome == "unknown"


def test_query_active_for_running_txn():
    rt, counter, clients, driver = build_and_warm(seed=93)
    from repro import transaction_program
    from repro.sim.process import sleep

    @transaction_program
    def slow(txn):
        yield txn.call("counter", "increment", 1)
        yield sleep(500.0)
        return "ok"

    clients.register_program("slow", slow)
    driver.submit("clients", "slow")
    rt.run_for(100)
    primary = rt.groups["clients"].active_primary()
    running = [aid for aid in primary.client_role._txns]
    assert running
    outcome, _ = primary.query_outcome(running[0])
    assert outcome == "active"


def test_any_cohort_answers_queries(counter_system):
    """Backups answer queries from their outcomes table (section 3.4)."""
    rt, counter, clients, driver = counter_system
    future = driver.submit("clients", "bump", 3)
    rt.run_for(400)
    assert future.result()[0] == "committed"
    rt.quiesce()
    aid = next(iter(rt.ledger.committed))
    primary = counter.active_primary()
    for backup_mid in primary.cur_view.backups:
        outcome, _ = counter.cohort(backup_mid).query_outcome(aid)
        assert outcome == "committed"
