"""Integration tests for the config-level ablations used by the harness."""


from repro.config import ProtocolConfig

from tests.conftest import build_counter_system


def test_force_on_call_slows_calls_but_commits():
    plain = build_counter_system(seed=191)
    forced = build_counter_system(seed=191, config=ProtocolConfig(force_on_call=True))
    for rt, _c, _cl, driver in (plain, forced):
        future = driver.submit("clients", "bump", 1)
        rt.run_for(500)
        assert future.result()[0] == "committed"
    plain_lat = plain[0].metrics.latencies["call_latency:counter"].mean
    forced_lat = forced[0].metrics.latencies["call_latency:counter"].mean
    assert forced_lat > plain_lat  # the extra force shows up per call


def test_force_on_call_prepares_never_wait():
    rt, _counter, _clients, driver = build_counter_system(
        seed=192, config=ProtocolConfig(force_on_call=True)
    )
    for _ in range(5):
        future = driver.submit("clients", "bump", 1)
        rt.run_for(400)
        assert future.result()[0] == "committed"
    # Every completed-call record was already forced when prepare arrived.
    assert rt.metrics.counters.get("prepare_force_waits:counter", 0) == 0


def test_viewstamp_checks_off_aborts_cross_view_txn():
    """With the virtual-partitions rule, a transaction whose call ran in an
    earlier view must abort even though its records survived."""
    from repro import transaction_program
    from repro.sim.process import sleep

    for viewstamps, expected in ((True, "committed"), (False, "aborted")):
        rt, counter, clients, driver = build_counter_system(
            seed=193, config=ProtocolConfig(viewstamp_checks=viewstamps)
        )

        @transaction_program
        def straddler(txn):
            result = yield txn.call("counter", "increment", 1)
            yield sleep(300.0)  # a view change happens in this window
            return result

        clients.register_program("straddler", straddler)
        future = driver.submit("clients", "straddler")
        rt.run_for(50)
        # Change the counter group's view *without* losing the records:
        # crash a backup so the primary keeps its state and stays primary.
        primary = counter.active_primary()
        backup_mid = primary.cur_view.backups[0]
        counter.crash_cohort(backup_mid)
        rt.run_for(4000)
        assert future.done
        assert future.result()[0] == expected, (viewstamps, future.result())
        rt.quiesce(duration=800)
        expected_count = 1 if expected == "committed" else 0
        assert counter.read_object("count") == expected_count


def test_unilateral_edit_avoids_view_change():
    """A silenced backup uplink is absorbed by a view-edit record: the
    viewid never changes, transactions keep flowing."""
    from repro.net.link import LinkModel

    rt, counter, _clients, driver = build_counter_system(
        seed=194, config=ProtocolConfig(unilateral_edits=True)
    )
    future = driver.submit("clients", "bump", 1)
    rt.run_for(300)
    assert future.result()[0] == "committed"
    primary = counter.active_primary()
    viewid_before = primary.cur_viewid
    victim_mid = primary.cur_view.backups[0]
    victim = counter.cohort(victim_mid)
    dead = LinkModel(base_delay=1.0, jitter=0.2, loss_probability=0.9999)
    for peer, address in victim.configuration:
        if peer != victim.mymid:
            rt.network.set_link_model(victim.address, address, dead)
    rt.run_for(300)  # suspicion + exclusion
    assert primary.cur_viewid == viewid_before  # no view change
    assert victim_mid not in primary.cur_view
    assert rt.metrics.counters.get("unilateral_view_edits", 0) >= 1
    # Service continues with the remaining backup.
    future = driver.submit("clients", "bump", 1)
    rt.run_for(300)
    assert future.result()[0] == "committed"
    # Heal: the backup is re-added, again without a view change.
    for peer, address in victim.configuration:
        if peer != victim.mymid:
            rt.network.set_link_model(victim.address, address, rt.network.link)
    rt.run_for(500)
    assert primary.cur_viewid == viewid_before
    assert victim_mid in primary.cur_view
    rt.quiesce(duration=800)
    assert victim.store.get("count").base == 2  # caught up via retained buffer


def test_exclusion_below_majority_triggers_real_view_change():
    """If excluding the silent backups would drop the view below a
    majority, the primary must run a full view change instead."""
    from repro.net.link import LinkModel

    rt, counter, _clients, driver = build_counter_system(
        seed=195, config=ProtocolConfig(unilateral_edits=True)
    )
    primary = counter.active_primary()
    dead = LinkModel(base_delay=1.0, jitter=0.2, loss_probability=0.9999)
    # Silence BOTH backups' uplinks: exclusion would leave a minority.
    for backup_mid in primary.cur_view.backups:
        victim = counter.cohort(backup_mid)
        for peer, address in victim.configuration:
            if peer != victim.mymid:
                rt.network.set_link_model(victim.address, address, dead)
    rt.run_for(1500)
    # No unilateral edit could help; the primary is in the view-change loop.
    assert rt.metrics.counters.get("unilateral_view_edits", 0) == 0
    assert rt.metrics.counters.get("view_changes_started:counter", 0) >= 1
