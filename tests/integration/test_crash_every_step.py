"""Systematic crash-point sweep: kill a primary at every instant of a
transaction's life and assert outcome consistency each time.

This is the classic "crash at every protocol step" torture test: the
simulation is deterministic, so sweeping the crash time over the
transaction's whole duration hits every message boundary -- call receipt,
call execution, reply, prepare, force, committing, commit, ack, done.
"""

import pytest

from tests.conftest import build_counter_system


def run_with_crash_at(offset, victim_group, seed=777):
    rt, counter, clients, driver = build_counter_system(seed=seed)
    future = driver.submit("clients", "bump", 10, retries=1)
    group = counter if victim_group == "server" else clients
    if offset is not None:
        rt.sim.schedule(offset, group.crash_primary)
        rt.sim.schedule(offset + 400.0, lambda: group.cohort(0).node.recover()
                        if not group.cohort(0).node.up else None)
        # recover whichever cohort actually died
        def recover_all():
            for cohort in group.cohorts.values():
                if not cohort.node.up:
                    cohort.node.recover()
        rt.sim.schedule(offset + 400.0, recover_all)
    rt.run_for(6000)
    rt.quiesce(duration=600)
    outcome = future.result()[0] if future.done else "unresolved"
    value = None
    if counter.active_primary() is not None:
        value = counter.read_object("count")
    return rt, counter, outcome, value


def assert_consistent(rt, counter, outcome, value):
    # Ground truth from the ledger.  The driver retries once after silence,
    # and a retry is a *new* transaction (at-most-once per attempt, see
    # DESIGN.md D9), so up to two commits are legitimate.
    committed = rt.ledger.commit_count
    assert committed in (0, 1, 2)
    if value is not None:
        # The counter reflects exactly the committed work -- never a torn
        # or duplicated install.
        assert value == 10 * committed, (outcome, value, committed)
    if outcome == "committed":
        assert committed >= 1
    if outcome == "aborted":
        # The attempt the driver heard about aborted; a retried attempt may
        # still have committed independently.
        assert committed <= 1
    # Safety always.
    rt.check_invariants(require_convergence=False)
    if counter.active_primary() is not None:
        problems = counter.divergence_report()
        assert not problems, problems


# The transaction completes by ~t=30 in the failure-free run; sweep past it.
CRASH_OFFSETS = [float(t) for t in range(1, 40, 2)]


@pytest.mark.parametrize("offset", CRASH_OFFSETS)
def test_server_primary_crash_at(offset):
    rt, counter, outcome, value = run_with_crash_at(offset, "server")
    assert_consistent(rt, counter, outcome, value)


@pytest.mark.parametrize("offset", CRASH_OFFSETS)
def test_client_primary_crash_at(offset):
    rt, counter, outcome, value = run_with_crash_at(offset, "client")
    assert_consistent(rt, counter, outcome, value)


def test_no_crash_baseline():
    rt, counter, outcome, value = run_with_crash_at(None, "server")
    assert outcome == "committed"
    assert value == 10
    assert_consistent(rt, counter, outcome, value)


@pytest.mark.parametrize("offset", [3.0, 9.0, 15.0, 21.0])
def test_double_crash_both_primaries_at(offset):
    """Crash both the server and the client primary at the same instant."""
    rt, counter, clients, driver = build_counter_system(seed=778)
    future = driver.submit("clients", "bump", 10, retries=1)

    def crash_both():
        counter.crash_primary()
        clients.crash_primary()

    def recover_all():
        for group in (counter, clients):
            for cohort in group.cohorts.values():
                if not cohort.node.up:
                    cohort.node.recover()

    rt.sim.schedule(offset, crash_both)
    rt.sim.schedule(offset + 400.0, recover_all)
    rt.run_for(8000)
    rt.quiesce(duration=600)
    value = counter.read_object("count") if counter.active_primary() else None
    committed = rt.ledger.commit_count
    if value is not None:
        assert value == 10 * committed
    rt.check_invariants(require_convergence=False)
