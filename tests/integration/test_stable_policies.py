"""Stable-storage policy behaviour (section 4.2 spectrum)."""


from repro.config import ProtocolConfig
from repro.storage.stable import StableStoragePolicy

from tests.conftest import build_counter_system


def run_bump(rt, driver, amount, time=400):
    future = driver.submit("clients", "bump", amount)
    rt.run_for(time)
    assert future.done
    return future.result()


def test_minimal_policy_catastrophe_stalls():
    rt, counter, _clients, driver = build_counter_system(seed=171)
    assert run_bump(rt, driver, 5)[0] == "committed"
    rt.quiesce()
    for mid in (0, 1):
        counter.crash_cohort(mid)
    rt.run_for(100)
    for mid in (0, 1):
        counter.recover_cohort(mid)
    rt.run_for(4000)
    assert counter.active_primary() is None


def test_all_policy_survives_catastrophe_with_state():
    config = ProtocolConfig(storage_policy=StableStoragePolicy.ALL)
    rt, counter, _clients, driver = build_counter_system(seed=171, config=config)
    assert run_bump(rt, driver, 5)[0] == "committed"
    rt.quiesce()
    for mid in (0, 1):
        counter.crash_cohort(mid)
    rt.run_for(100)
    for mid in (0, 1):
        counter.recover_cohort(mid)
    rt.run_for(4000)
    primary = counter.active_primary()
    assert primary is not None
    assert primary.store.get("count").base == 5
    rt.quiesce()
    rt.check_invariants(require_convergence=False)


def test_primary_gstate_policy_recovers_primary_state():
    """PRIMARY_GSTATE persists gstate at the primary only: if the primary
    is among the recovered cohorts, its durable state seeds the new view."""
    config = ProtocolConfig(storage_policy=StableStoragePolicy.PRIMARY_GSTATE)
    rt, counter, _clients, driver = build_counter_system(seed=172, config=config)
    assert run_bump(rt, driver, 8)[0] == "committed"
    rt.quiesce()
    for mid in (0, 1):  # includes the primary (mid 0)
        counter.crash_cohort(mid)
    rt.run_for(100)
    for mid in (0, 1):
        counter.recover_cohort(mid)
    rt.run_for(4000)
    primary = counter.active_primary()
    assert primary is not None
    assert primary.store.get("count").base == 8


def test_all_policy_recovered_cohort_accepts_normally():
    config = ProtocolConfig(storage_policy=StableStoragePolicy.ALL)
    rt, counter, _clients, driver = build_counter_system(seed=173, config=config)
    assert run_bump(rt, driver, 2)[0] == "committed"
    rt.quiesce()
    victim = counter.cohort(1)
    victim.node.crash()
    rt.run_for(50)
    victim.node.recover()
    # The recovered cohort restored gstate from NVRAM: up-to-date at once.
    assert victim.up_to_date
    assert victim.store.get("count").base == 2


def test_force_to_stable_slows_commit():
    fast = build_counter_system(seed=174)
    slow = build_counter_system(
        seed=174,
        config=ProtocolConfig(force_to_stable=True, stable_write_latency=25.0),
    )
    for label, (rt, _c, _cl, driver) in (("fast", fast), ("slow", slow)):
        run_bump(rt, driver, 1, time=800)
    fast_lat = fast[0].metrics.latencies["driver_txn_latency"].mean
    slow_lat = slow[0].metrics.latencies["driver_txn_latency"].mean
    assert slow_lat > fast_lat + 25.0  # at least one blocking disk force


def test_transaction_survives_full_group_crash_under_nvram():
    """With the ALL policy the completed-call records, history, and gstate
    all persist: a whole-group crash in the middle of an open transaction
    loses nothing, the restored history still covers the pset, and the
    transaction commits after the group re-forms -- durable state makes
    the crash invisible to the transaction."""
    from repro import transaction_program
    from repro.sim.process import sleep

    config = ProtocolConfig(storage_policy=StableStoragePolicy.ALL)
    rt, counter, clients, driver = build_counter_system(seed=175, config=config)

    @transaction_program
    def slow(txn):
        yield txn.call("counter", "increment", 3)
        yield sleep(500.0)  # the whole server group crashes in this window
        return "done"

    clients.register_program("slow", slow)
    future = driver.submit("clients", "slow", retries=0)
    rt.run_for(100)  # call completed; txn still open
    for mid in range(3):
        counter.crash_cohort(mid)
    rt.run_for(50)
    for mid in range(3):
        counter.recover_cohort(mid)
    rt.run_for(8000)
    rt.quiesce()
    # The driver (retries=0) gave up long before the slow transaction
    # finished; the ledger and the object state are the ground truth.
    assert future.done
    primary = counter.active_primary()
    assert primary is not None
    assert primary.lockmgr.holders_of("count") == {}
    assert counter.read_object("count") == 3
    assert rt.ledger.commit_count >= 1
    rt.check_invariants(require_convergence=False)
