"""S3: crash recovery across the stable-storage policy spectrum.

Each test runs a seeded workload to quiescence, injects crashes (one of
them mid-view-change), lets the group converge, and then compares the
replicated application state against a same-seed no-fault control run:
recovery must restore *exactly* the committed state, however little of
it was on disk (MINIMAL) or however much (ALL).
"""


from repro.config import ProtocolConfig
from repro.core.cohort import Status
from repro.harness.common import build_kv_system
from repro.perf.report import state_digest
from repro.storage.stable import StableStoragePolicy


def _run_workload(rt, driver, spec, count=12):
    futures = [
        driver.call("clients", "write", "kv", spec.key(index % spec.n_keys),
                    index)
        for index in range(count)
    ]
    rt.run_for(1500)
    assert all(future.done for future in futures)
    assert all(future.result()[0] == "committed" for future in futures)
    rt.quiesce()


def _control_digest(seed, config=None, n_cohorts=3):
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=n_cohorts, config=config
    )
    rt.run_for(300)
    _run_workload(rt, driver, spec)
    return state_digest(rt)


def test_minimal_recovered_backup_catches_up_via_view_change():
    rt, kv, _clients, driver, spec = build_kv_system(seed=81)
    rt.run_for(300)
    _run_workload(rt, driver, spec)

    primary_mid = kv.active_primary().mymid
    victim_mid = next(mid for mid in range(3) if mid != primary_mid)
    victim = kv.cohort(victim_mid)
    kv.crash_cohort(victim_mid)
    rt.run_for(200)
    kv.recover_cohort(victim_mid)
    # MINIMAL keeps no gstate: the recovered cohort is NOT current until a
    # view change transfers state to it.
    assert not victim.up_to_date
    rt.run_for(4000)
    assert victim.up_to_date
    assert victim.status is Status.ACTIVE
    rt.quiesce()
    rt.check_invariants(require_convergence=True)
    assert state_digest(rt) == _control_digest(81)


def test_all_policy_recovered_backup_is_current_immediately():
    config = ProtocolConfig(storage_policy=StableStoragePolicy.ALL)
    rt, kv, _clients, driver, spec = build_kv_system(seed=82, config=config)
    rt.run_for(300)
    _run_workload(rt, driver, spec)

    primary_mid = kv.active_primary().mymid
    victim_mid = next(mid for mid in range(3) if mid != primary_mid)
    victim = kv.cohort(victim_mid)
    kv.crash_cohort(victim_mid)
    rt.run_for(200)
    kv.recover_cohort(victim_mid)
    # ALL restored gstate from disk: current without waiting for a view.
    assert victim.up_to_date
    rt.run_for(2000)
    rt.quiesce()
    rt.check_invariants(require_convergence=True)
    assert state_digest(rt) == _control_digest(82, config=config)


def test_minimal_crash_during_view_change_still_converges():
    """Crash the primary, then crash the resulting view manager before it
    can finish forming: with five cohorts a majority stays up-to-date, so
    the survivors form a view and the recovered pair rejoins later."""
    rt, kv, _clients, driver, spec = build_kv_system(seed=83, n_cohorts=5)
    rt.run_for(300)
    _run_workload(rt, driver, spec)

    primary_mid = kv.active_primary().mymid
    kv.crash_cohort(primary_mid)
    # Wait for some survivor to take the manager role, then kill it
    # mid-formation (before the invitation round can complete).
    manager_mid = None
    for _ in range(200):
        rt.run_for(5)
        manager_mid = next(
            (mid for mid in range(5)
             if mid != primary_mid
             and kv.cohort(mid).node.up
             and kv.cohort(mid).status is Status.VIEW_MANAGER),
            None,
        )
        if manager_mid is not None:
            break
    assert manager_mid is not None, "no survivor ever became view manager"
    kv.crash_cohort(manager_mid)

    rt.run_for(3000)
    # The three remaining up-to-date cohorts are a majority of five: they
    # must have formed a view on their own.
    assert kv.active_primary() is not None

    kv.recover_cohort(primary_mid)
    kv.recover_cohort(manager_mid)
    rt.run_for(6000)
    assert kv.cohort(primary_mid).up_to_date
    assert kv.cohort(manager_mid).up_to_date
    rt.quiesce()
    rt.check_invariants(require_convergence=True)
    assert state_digest(rt) == _control_digest(83, n_cohorts=5)
