"""Nested transactions / subactions (section 3.6)."""


from repro import EmptyModule, Runtime, transaction_program
from repro.sim.process import sleep
from repro.workloads.kv import KVStoreSpec


def build(seed=51):
    rt = Runtime(seed=seed)
    spec = KVStoreSpec(n_keys=32)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    driver = rt.create_driver("driver")
    return rt, kv, clients, driver, spec


@transaction_program(subactions=True)
def chain(txn, keys, pause=10.0):
    for key in keys:
        yield txn.call("kv", "incr", key, 1)
        yield sleep(pause)
    return len(keys)


def test_subactions_commit_normally():
    rt, kv, clients, driver, spec = build()
    clients.register_program("chain", chain)
    f = driver.submit("clients", "chain", [spec.key(0), spec.key(1)])
    rt.run_for(600)
    assert f.result() == ("committed", 2)
    rt.quiesce()
    assert kv.read_object(spec.key(0)) == 1
    assert kv.read_object(spec.key(1)) == 1


def test_subaction_retry_across_view_change():
    """A call that hits the crash window is retried as a new subaction
    and the transaction still commits exactly once."""
    rt, kv, clients, driver, spec = build(seed=52)
    clients.register_program("chain", chain)
    f = driver.submit("clients", "chain",
                      [spec.key(i) for i in range(4)], 40.0)
    rt.run_for(60)
    kv.crash_primary()
    rt.sim.schedule(200.0, kv.cohort(0).node.recover)
    rt.run_for(5000)
    rt.quiesce()
    if f.done and f.result()[0] == "committed":
        # Exactly-once despite the retries: every key is 1, never 2.
        for i in range(4):
            assert kv.read_object(spec.key(i)) == 1
        assert rt.metrics.counters.get("subaction_retries:clients", 0) >= 1
    rt.check_invariants(require_convergence=False)


def test_orphan_subaction_effects_discarded():
    """If the original attempt actually executed (only its reply was lost),
    the pset filter at prepare drops the orphan's writes: values are
    incremented once, not twice."""
    from repro.net.link import LinkModel

    rt, kv, clients, driver, spec = build(seed=53)
    clients.register_program("chain", chain)
    f = driver.submit("clients", "chain", [spec.key(9)])
    rt.run_for(5)
    # Lose the reply path briefly: the call executes but the client never
    # hears; the subaction aborts and a fresh one retries.
    primary = kv.active_primary()
    clients_primary = rt.groups["clients"].active_primary()
    dead = LinkModel(base_delay=1.0, jitter=0.0, loss_probability=0.999999)
    rt.network.set_link_model(primary.address, clients_primary.address, dead)
    rt.run_for(150)
    rt.network.set_link_model(
        primary.address, clients_primary.address, rt.network.link
    )
    rt.run_for(3000)
    rt.quiesce()
    if f.done and f.result()[0] == "committed":
        assert kv.read_object(spec.key(9)) == 1  # exactly once
    rt.check_invariants(require_convergence=False)


def test_flat_transaction_aborts_where_nested_retries():
    @transaction_program
    def flat_chain(txn, keys, pause=40.0):
        for key in keys:
            yield txn.call("kv", "incr", key, 1)
            yield sleep(pause)
        return len(keys)

    rt, kv, clients, driver, spec = build(seed=54)
    clients.register_program("flat_chain", flat_chain)
    f = driver.submit("clients", "flat_chain", [spec.key(i) for i in range(4)])
    rt.run_for(60)
    kv.crash_primary()
    rt.run_for(4000)
    assert f.done
    assert f.result()[0] == "aborted"
    rt.check_invariants(require_convergence=False)


def test_retry_budget_exhausted_aborts():
    """If the group stays dead, subaction retries run out and the
    transaction aborts rather than looping forever."""
    rt, kv, clients, driver, spec = build(seed=55)
    clients.register_program("chain", chain)
    f = driver.submit("clients", "chain", [spec.key(0), spec.key(1)], 30.0)
    rt.run_for(50)
    for mid in range(3):
        kv.crash_cohort(mid)  # the whole group dies
    rt.run_for(10_000)
    assert f.done
    assert f.result()[0] == "aborted"


def test_subaction_numbers_are_distinct():
    """Every call attempt carries a distinct subaction id (retries
    included), so server-side filtering can tell them apart."""
    from repro.core.client_role import Transaction

    class FakeRole:
        def _make_call(self, *args, **kwargs):  # pragma: no cover
            raise NotImplementedError

    from repro.txn.ids import Aid
    from repro.core.viewstamp import ViewId

    txn = Transaction(FakeRole(), Aid("g", ViewId(1, 0), 1), use_subactions=True)
    ids = [txn.next_attempt_id(base_seq=i) for i in range(5)]
    subactions = [call_id.subaction for call_id in ids]
    assert len(set(subactions)) == 5
