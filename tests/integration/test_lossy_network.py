"""Protocol resilience on lossy, duplicating, reordering links.

The paper's network model allows loss, duplication, and reordering even
without failures; the retransmission machinery (cumulative buffer acks,
call probes, prepare/commit retries, queries) must mask all of it.
"""

import pytest

from repro.net.link import LinkModel

from tests.conftest import build_bank_system, build_counter_system, total_balance


LOSSY = LinkModel(base_delay=1.0, jitter=1.0, loss_probability=0.10,
                  duplicate_probability=0.05)
VERY_LOSSY = LinkModel(base_delay=1.0, jitter=2.0, loss_probability=0.25,
                       duplicate_probability=0.10)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_transactions_complete_under_loss(seed):
    rt, counter, _clients, driver = build_counter_system(seed=seed, link=LOSSY)
    committed = 0
    for _ in range(10):
        future = driver.submit("clients", "bump", 1)
        rt.run_for(800)
        if future.done and future.result()[0] == "committed":
            committed += 1
    rt.quiesce(duration=1500)
    # Despite 10% loss, the vast majority commits; whatever committed is
    # exactly what the counter shows (exactly-once under duplication).
    assert committed >= 7
    assert counter.read_object("count") == rt.ledger.commit_count
    rt.check_invariants(require_convergence=False)


def test_exactly_once_under_heavy_duplication():
    """Network-duplicated calls/commits must never double-apply."""
    dup_heavy = LinkModel(base_delay=1.0, jitter=1.5, duplicate_probability=0.5)
    rt, counter, _clients, driver = build_counter_system(seed=5, link=dup_heavy)
    for _ in range(8):
        future = driver.submit("clients", "bump", 1)
        rt.run_for(500)
        assert future.result()[0] == "committed"
    rt.quiesce()
    assert counter.read_object("count") == 8
    rt.check_invariants()


def test_money_conserved_under_very_lossy_link():
    rt, bank, _clients, driver = build_bank_system(seed=6, link=VERY_LOSSY)
    for _ in range(12):
        driver.submit("clients", "transfer", "a", "b", 5)
        rt.run_for(900)
    rt.quiesce(duration=2000)
    assert total_balance(bank, ("a", "b", "c")) == 300
    rt.check_invariants(require_convergence=False)


def test_buffer_retransmission_converges_backups():
    """Backups behind a lossy link still converge via cumulative acks."""
    rt, counter, _clients, driver = build_counter_system(seed=7, link=LOSSY)
    for _ in range(6):
        future = driver.submit("clients", "bump", 2)
        rt.run_for(500)
        assert future.result()[0] == "committed"
    rt.quiesce(duration=3000)
    assert counter.converged(), counter.divergence_report()
    for cohort in counter.active_cohorts():
        assert cohort.store.get("count").base == 12
