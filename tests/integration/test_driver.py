"""Tests for the workload driver front-end."""

import pytest

from tests.conftest import build_counter_system


def test_driver_commits_and_returns_result(counter_system):
    rt, _counter, _clients, driver = counter_system
    future = driver.submit("clients", "bump", 3)
    rt.run_for(400)
    assert future.result() == ("committed", 3)


def test_driver_measures_latency(counter_system):
    rt, _counter, _clients, driver = counter_system
    driver.submit("clients", "bump", 1)
    rt.run_for(400)
    stat = rt.metrics.latencies["driver_txn_latency"]
    assert stat.count == 1
    assert stat.mean > 0


def test_driver_discovers_primary_from_cold_cache(counter_system):
    rt, _counter, _clients, driver = counter_system
    assert driver.cache.get("clients") is None
    future = driver.submit("clients", "bump", 1)
    rt.run_for(400)
    assert future.result()[0] == "committed"
    assert driver.cache.get("clients") is not None


def test_driver_follows_client_group_failover(counter_system):
    rt, _counter, clients, driver = counter_system
    first = driver.submit("clients", "bump", 1)
    rt.run_for(400)
    assert first.result()[0] == "committed"
    clients.crash_primary()
    rt.run_for(400)
    second = driver.submit("clients", "bump", 1)
    rt.run_for(3000)
    assert second.done
    assert second.result()[0] == "committed"


def test_driver_gives_up_after_retry_budget():
    rt, counter, clients, driver = build_counter_system(seed=14)
    for mid in range(3):
        clients.crash_cohort(mid)  # the whole client group is dead
    future = driver.submit("clients", "bump", 1, retries=2)
    rt.run_for(10_000)
    assert future.done
    assert future.result() == ("unknown", None)


def test_driver_duplicate_outcome_suppressed(counter_system):
    """A retransmitted outcome for the same request resolves only once."""
    rt, _counter, _clients, driver = counter_system
    future = driver.submit("clients", "bump", 2)
    rt.run_for(400)
    first = future.result()
    # Late duplicate delivery must be ignored without error.
    from repro.core.messages import TxnOutcomeMsg

    driver.handle_message(
        TxnOutcomeMsg(request_id=1, outcome="aborted", result=None, aid=None),
        "clients/0",
    )
    assert future.result() == first


def test_driver_crash_resolves_pending_to_unknown(counter_system):
    """A driver crash must not strand callers: every in-flight submission
    resolves to ("unknown", None) and its retry timer is cancelled."""
    rt, _counter, _clients, driver = counter_system
    futures = [driver.submit("clients", "bump", 1) for _ in range(3)]
    assert not any(future.done for future in futures)
    rt.faults.crash(driver.node.node_id)
    assert all(future.result() == ("unknown", None) for future in futures)
    assert not driver._requests
    rt.run_for(2000)  # stale timers must not fire into the cleared table


def test_driver_timeout_exhaustion_cancels_timer(counter_system):
    """When the retry budget runs out, the request resolves to "unknown"
    AND its per-attempt timer is cancelled and dropped -- a resolved
    request must not pin a live heap entry on the lazy-cancel path."""
    rt, _counter, clients, driver = counter_system
    for mid in range(3):
        clients.crash_cohort(mid)
    future = driver.submit("clients", "bump", 1, retries=1, timeout=50.0)
    (request,) = driver._requests.values()
    rt.run_for(5000)
    assert future.result() == ("unknown", None)
    assert request.timer is None  # cancelled and nulled, not just expired
    assert not driver._requests


def test_driver_crash_nulls_pending_timers(counter_system):
    rt, _counter, _clients, driver = counter_system
    driver.submit("clients", "bump", 1, timeout=500.0)
    (request,) = driver._requests.values()
    assert request.timer is not None
    rt.faults.crash(driver.node.node_id)
    assert request.timer is None
    assert request.future.result() == ("unknown", None)


def test_driver_submit_rejects_non_positive_timeout(counter_system):
    _rt, _counter, _clients, driver = counter_system
    with pytest.raises(ValueError):
        driver.submit("clients", "bump", 1, timeout=0)
    with pytest.raises(ValueError):
        driver.submit("clients", "bump", 1, timeout=-5.0)


def test_driver_submit_timeout_overrides_default(counter_system):
    rt, _counter, _clients, driver = counter_system
    driver.submit("clients", "bump", 1, timeout=77.0)
    (request,) = driver._requests.values()
    assert request.timeout == 77.0
    driver.submit("clients", "bump", 1)
    default = [r for r in driver._requests.values() if r.timeout != 77.0]
    assert default and default[0].timeout == rt.config.call_timeout * 2


def test_create_group_requires_at_least_one_cohort():
    from repro import EmptyModule, Runtime

    rt = Runtime(seed=1)
    with pytest.raises(ValueError, match="n_cohorts"):
        rt.create_group("empty", EmptyModule(), n_cohorts=0)
    with pytest.raises(ValueError):
        rt.create_group("empty", EmptyModule(), nodes=[])


def test_driver_request_ids_unique(counter_system):
    rt, _counter, _clients, driver = counter_system
    f1 = driver.submit("clients", "bump", 1)
    f2 = driver.submit("clients", "bump", 1)
    rt.run_for(600)
    assert f1.result()[0] == "committed"
    assert f2.result()[0] == "committed"
    assert rt.ledger.commit_count == 2  # two distinct transactions ran
