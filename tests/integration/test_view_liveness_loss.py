"""View-change liveness when the view-change messages themselves are lost.

The formation protocol (invites, accepts, init-view) gets no help from
the communication buffer's retransmission machinery, so a lossy window
that coincides with a crash is the hardest liveness case: the group must
keep retrying -- with backoff and (in adaptive mode) mid-round invite
retransmission -- until a view forms.  Safety must hold throughout: at
no point may two cohorts act as active primary of the same view, and the
final history must be serializable.
"""

import pytest

from repro import FaultPlan
from repro.config import ProtocolConfig
from repro.core.cohort import Status

from tests.conftest import build_counter_system


def _active_primaries(group):
    return [
        cohort
        for cohort in group.cohorts.values()
        if cohort.node.up and cohort.status is Status.ACTIVE and cohort.is_primary
    ]


def _run_lossy_crash(seed, config=None, loss=0.5, lossy_window=600.0):
    rt, counter, _clients, driver = build_counter_system(seed=seed, config=config)
    future = driver.submit("clients", "bump", 1)
    rt.run_for(300)
    assert future.result()[0] == "committed"

    # Heavy loss starts just before the primary dies: the invites,
    # accepts and init-view messages of the ensuing view change are
    # dropped at ~50% until the window closes.
    plan = FaultPlan()
    plan.at(50.0).lossy(rate=loss, duration=lossy_window)
    plan.at(60.0).crash_primary("counter")
    rt.inject(plan)

    deadline = rt.sim.now + 8000.0
    converged_at = None
    while rt.sim.now < deadline:
        rt.run_for(50)
        primaries = _active_primaries(counter)
        # Split-brain check at every step: two up-and-active primaries
        # sharing a viewid would be a safety violation.
        viewids = [cohort.cur_viewid for cohort in primaries]
        assert len(set(viewids)) == len(viewids), "two primaries in one view"
        if converged_at is None and primaries:
            converged_at = rt.sim.now
    assert converged_at is not None, "no view formed despite retries"

    # After the window closes the survivors must settle on one primary.
    primaries = _active_primaries(counter)
    assert len(primaries) == 1
    rt.quiesce(duration=600)
    rt.check_invariants(require_convergence=False)
    return rt, counter, driver, converged_at


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_view_forms_despite_lost_formation_messages(seed):
    rt, counter, driver, _at = _run_lossy_crash(seed)
    # The reorganized group still serves writes.
    for _ in range(3):
        future = driver.submit("clients", "bump", 1)
        rt.run_for(600)
        if future.done and future.result()[0] == "committed":
            return
    raise AssertionError("no write committed after the lossy view change")


@pytest.mark.parametrize("seed", [31, 32])
def test_fixed_mode_also_stays_live(seed):
    """The paper-faithful configuration converges too (just more slowly):
    adaptive machinery is an optimization, not a liveness requirement."""
    config = ProtocolConfig(adaptive_timeouts=False)
    _rt, counter, _driver, _at = _run_lossy_crash(seed, config=config)
    assert len(_active_primaries(counter)) == 1


def test_invite_retransmission_fires_under_loss():
    """Adaptive mode actually resends invites when the first copies drop."""
    rt, _counter, _driver, _at = _run_lossy_crash(seed=41, loss=0.6)
    assert rt.metrics.counters.get("invite_retransmits:counter", 0) > 0
