"""S2: a failed cur_viewid stable write must refuse the view, not lose it.

Section 4 makes recovery depend on ``cur_viewid`` being durable before a
view becomes active.  Under an injected disk fault the write resolves to
a DiskFault; the manager must refuse the formation (counted in
``stable_write_failures:<group>`` / ``view_formations_failed:<group>``,
traced as ``stable_write_failed``) and retry, so the group stalls only
while the disk is bad and re-forms after ``disk_heal``.
"""


from repro.config import TraceConfig
from repro.harness.common import build_kv_system


def _settle(rt, kv):
    rt.run_for(300)
    assert kv.active_primary() is not None


def test_failed_viewid_write_refuses_the_view_until_disk_heals():
    rt, kv, _clients, driver, spec = build_kv_system(seed=71)
    _settle(rt, kv)
    node_ids = [node.node_id for node in kv.nodes()]
    primary_node = kv.active_primary().node.node_id

    # Every surviving cohort's disk fails, then the primary dies: whoever
    # wins the invitation round cannot persist the new cur_viewid.
    for node_id in node_ids:
        if node_id != primary_node:
            rt.faults.disk_fail(node_id)
    rt.faults.crash(primary_node)
    rt.run_for(3000)

    assert kv.active_primary() is None, "view formed without a durable viewid"
    assert rt.metrics.counters.get("stable_write_failures:kv", 0) > 0
    assert rt.metrics.counters.get("view_formations_failed:kv", 0) > 0

    # Heal the disks (leave the old primary down): the retry loop must now
    # succeed and the survivors form a view on their own.
    for node_id in node_ids:
        if node_id != primary_node:
            rt.faults.disk_heal(node_id)
    rt.run_for(3000)
    primary = kv.active_primary()
    assert primary is not None
    assert primary.node.node_id != primary_node


def test_stable_write_failure_is_traced():
    trace = TraceConfig(enabled=True, ring_size=50_000)
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=72, trace=trace)
    _settle(rt, kv)
    node_ids = [node.node_id for node in kv.nodes()]
    primary_node = kv.active_primary().node.node_id
    for node_id in node_ids:
        if node_id != primary_node:
            rt.faults.disk_fail(node_id)
    rt.faults.crash(primary_node)
    rt.run_for(2000)

    failures = [
        event for event in rt.tracer.events()
        if event.kind == "stable_write_failed"
    ]
    assert failures
    assert failures[0].data["key"] == "cur_viewid"
    assert failures[0].data["group"] == "kv"


def test_commits_resume_after_disk_heal():
    rt, kv, _clients, driver, spec = build_kv_system(seed=73)
    _settle(rt, kv)
    node_ids = [node.node_id for node in kv.nodes()]
    primary_node = kv.active_primary().node.node_id
    for node_id in node_ids:
        if node_id != primary_node:
            rt.faults.disk_fail(node_id)
    rt.faults.crash(primary_node)
    rt.run_for(1500)
    for node_id in node_ids:
        if node_id != primary_node:
            rt.faults.disk_heal(node_id)
    rt.run_for(2500)

    future = driver.call("clients", "write", "kv", spec.key(0), 99)
    rt.run_for(600)
    assert future.done
    outcome, _ = future.result()
    assert outcome == "committed"
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
