"""View changes end to end: crashes, recoveries, state survival."""


from repro.core.cohort import Status



def submit_ok(rt, driver, program, *args, time=400):
    future = driver.submit("clients", program, *args)
    rt.run_for(time)
    assert future.done
    return future.result()


def await_primary(rt, group, deadline=3000):
    limit = rt.sim.now + deadline
    while rt.sim.now < limit:
        primary = group.active_primary()
        if primary is not None:
            return primary
        rt.run_for(50)
    raise AssertionError(f"no active primary for {group.groupid}")


def test_backup_takes_over_after_primary_crash(counter_system):
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 5)
    old_primary = counter.active_primary()
    old_viewid = old_primary.cur_viewid
    counter.crash_primary()
    new_primary = await_primary(rt, counter)
    assert new_primary.mymid != old_primary.mymid
    assert new_primary.cur_viewid > old_viewid


def test_committed_state_survives_view_change(counter_system):
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 42)
    rt.quiesce()
    counter.crash_primary()
    new_primary = await_primary(rt, counter)
    assert new_primary.store.get("count").base == 42


def test_service_continues_after_view_change(counter_system):
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 1)
    counter.crash_primary()
    await_primary(rt, counter)
    # First post-crash attempt may abort (stale cache, the paper's rule);
    # a retry must commit.
    for _ in range(3):
        outcome, _ = submit_ok(rt, driver, "bump", 1)
        if outcome == "committed":
            break
    assert outcome == "committed"
    assert counter.read_object("count") == 2


def test_backup_crash_keeps_old_primary(counter_system):
    """Losing a backup reorganizes but the primary stays (minimal
    disruption: 'the old primary of that view is selected if possible')."""
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 1)
    old_primary = counter.active_primary()
    backup_mid = old_primary.cur_view.backups[0]
    counter.crash_cohort(backup_mid)
    rt.run_for(600)
    new_primary = await_primary(rt, counter)
    assert new_primary.mymid == old_primary.mymid
    assert backup_mid not in new_primary.cur_view


def test_recovered_cohort_rejoins(counter_system):
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 7)
    victim = counter.crash_primary()
    await_primary(rt, counter)
    counter.recover_cohort(victim)
    rt.run_for(1500)
    primary = await_primary(rt, counter)
    assert victim in primary.cur_view
    rejoined = counter.cohort(victim)
    assert rejoined.status is Status.ACTIVE
    assert rejoined.up_to_date
    rt.quiesce()
    assert rejoined.store.get("count").base == 7


def test_recovered_cohort_is_not_chosen_primary(counter_system):
    """A crashed-and-recovered cohort lost its state; the formation rule
    never picks it as the new primary."""
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 3)
    victim = counter.crash_primary()
    await_primary(rt, counter)
    counter.recover_cohort(victim)
    rt.run_for(1500)
    primary = await_primary(rt, counter)
    assert primary.mymid != victim


def test_two_sequential_failovers(counter_system):
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 1)
    first = counter.crash_primary()
    await_primary(rt, counter)
    counter.recover_cohort(first)
    rt.run_for(1200)
    second = counter.crash_primary()
    assert second != first
    primary = await_primary(rt, counter)
    assert primary.node.up
    for _ in range(3):
        outcome, _ = submit_ok(rt, driver, "bump", 1)
        if outcome == "committed":
            break
    assert outcome == "committed"
    rt.quiesce()
    rt.check_invariants(require_convergence=False)


def test_no_majority_no_view(counter_system):
    """With two of three cohorts down, no new view can form."""
    rt, counter, _clients, _driver = counter_system
    counter.crash_cohort(0)
    counter.crash_cohort(1)
    rt.run_for(2000)
    assert counter.active_primary() is None


def test_majority_restored_view_forms(counter_system):
    """Formation condition 2: a crashed acceptance from an *older* view can
    be ignored, so a survivor of the newer view plus the recovered cohort
    form a view seeded from the survivor's state."""
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 6)
    rt.quiesce()
    # Crash the v1 primary; a new view v2 forms (primary 1, backup 2).
    counter.crash_cohort(0)
    await_primary(rt, counter)
    submit_ok(rt, driver, "bump", 1)  # seed v2 with an event
    rt.quiesce()
    # Now crash v2's primary too: cohort 2 alone has no majority.
    second_victim = counter.crash_primary()
    rt.run_for(800)
    assert counter.active_primary() is None
    # Recover cohort 0: its stable viewid is v1 < cohort 2's v2 normal
    # acceptance, so condition 2 admits the view.
    counter.recover_cohort(0)
    primary = await_primary(rt, counter, deadline=4000)
    assert primary.mymid == 2  # the only cohort with intact state
    assert primary.store.get("count").base >= 6


def test_double_crash_of_knowers_is_catastrophe(counter_system):
    """If the primary and the only up-to-date backup both lose volatile
    state, no view ever forms again (section 4.2), even after recovery."""
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 6)
    rt.quiesce()
    counter.crash_cohort(0)
    counter.crash_cohort(1)
    rt.run_for(400)
    counter.recover_cohort(0)
    counter.recover_cohort(1)
    rt.run_for(4000)
    # Cohort 2 survives with state, but it was a backup of the very view
    # the crashed cohorts name, so condition 3 can never be satisfied.
    assert counter.active_primary() is None


def test_viewids_strictly_increase(counter_system):
    rt, counter, _clients, driver = counter_system
    seen = [counter.highest_viewid()]
    for _ in range(2):
        victim = counter.crash_primary()
        await_primary(rt, counter)
        counter.recover_cohort(victim)
        rt.run_for(1200)
        seen.append(counter.highest_viewid())
    assert seen == sorted(seen)
    assert len(set(seen)) == len(seen)


def test_prepared_transaction_commits_across_coordinator_failover():
    """Committing records survive: a new client-group primary resumes
    phase two ('transactions that committed will still be committed')."""
    from repro import EmptyModule, Runtime
    from tests.conftest import CounterSpec, bump_program

    rt = Runtime(seed=88)
    counter = rt.create_group("counter", CounterSpec(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("bump", bump_program)
    driver = rt.create_driver("driver")
    future = driver.submit("clients", "bump", 11)
    rt.run_for(400)
    assert future.result()[0] == "committed"

    # Force a client-group view change; any committing records that had
    # been forced must be resumed by the new primary, and the counter's
    # committed value must stand.
    clients.crash_primary()
    rt.run_for(1500)
    rt.quiesce()
    assert counter.read_object("count") == 11
    rt.check_invariants(require_convergence=False)


def test_in_flight_transactions_abort_on_client_view_change():
    """'A view change at the coordinator that leads to a new primary will
    cause any of the group's transactions to abort automatically.'"""
    from repro import EmptyModule, Runtime, transaction_program
    from repro.sim.process import sleep
    from tests.conftest import CounterSpec

    rt = Runtime(seed=89)
    rt.create_group("counter", CounterSpec(), n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)

    @transaction_program
    def slow(txn):
        yield txn.call("counter", "increment", 1)
        yield sleep(500.0)  # still running when the primary dies
        yield txn.call("counter", "increment", 1)

    clients.register_program("slow", slow)
    driver = rt.create_driver("driver")
    future = driver.submit("clients", "slow", retries=0)
    rt.run_for(100)  # first call done; program sleeping
    clients.crash_primary()
    rt.run_for(3000)
    rt.quiesce()
    assert rt.groups["counter"].read_object("count") == 0
    # The driver never hears back (the new primary doesn't know the
    # request); ground truth records the abort.
    assert rt.ledger.commit_count == 0


def test_view_change_message_types(counter_system):
    """A forced view change uses exactly the Figure-5 message kinds."""
    rt, counter, _clients, driver = counter_system
    submit_ok(rt, driver, "bump", 1)
    before = dict(rt.metrics.messages_sent)
    counter.crash_primary()
    await_primary(rt, counter)
    sent = {
        key: rt.metrics.messages_sent[key] - before.get(key, 0)
        for key in rt.metrics.messages_sent
    }
    assert sent.get("InviteMsg", 0) >= 1
    assert sent.get("AcceptMsg", 0) >= 1
    # Newview state reaches backups through ordinary buffer traffic.
    assert sent.get("BufferMsg", 0) >= 1


def test_ledger_records_view_changes(counter_system):
    rt, counter, _clients, _driver = counter_system
    counter.crash_primary()
    await_primary(rt, counter)
    events = rt.ledger.view_changes_for("counter")
    assert len(events) == 1
    assert events[0].groupid == "counter"
