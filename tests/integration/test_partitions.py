"""Partitions: split-brain prevention, minority stalls, reconciliation."""


from repro import EmptyModule, Runtime
from repro.workloads.kv import KVStoreSpec, update_program, write_program



def await_primary(rt, group, deadline=3000):
    limit = rt.sim.now + deadline
    while rt.sim.now < limit:
        primary = group.active_primary()
        if primary is not None:
            return primary
        rt.run_for(50)
    raise AssertionError(f"no active primary for {group.groupid}")


def build_partitioned_kv(seed=55):
    rt = Runtime(seed=seed)
    spec = KVStoreSpec(n_keys=4)
    kv = rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("update", update_program)
    clients.register_program("write", write_program)
    driver = rt.create_driver("driver")
    return rt, kv, clients, driver, spec


def test_majority_side_elects_new_primary():
    rt, kv, _clients, driver, spec = build_partitioned_kv()
    f = driver.submit("clients", "update", "kv", spec.key(0))
    rt.run_for(300)
    assert f.result()[0] == "committed"
    old = kv.active_primary()
    rt.network.partition([{old.node.node_id}, ])
    primary = None
    limit = rt.sim.now + 3000
    while rt.sim.now < limit:
        rt.run_for(50)
        primary = kv.active_primary()
        if primary is not None and primary.mymid != old.mymid:
            break
    assert primary is not None and primary.mymid != old.mymid


def test_minority_primary_cannot_commit():
    """The fenced primary accepts calls but its forces never complete, so
    nothing it does after the partition commits (section 4.1)."""
    rt, kv, _clients, driver, spec = build_partitioned_kv()
    f = driver.submit("clients", "update", "kv", spec.key(0))
    rt.run_for(300)
    assert f.result()[0] == "committed"
    commits_before = rt.ledger.commit_count

    old = kv.active_primary()
    # Trap the whole client group + driver with the old primary so their
    # transactions go to the fenced side.
    minority = {old.node.node_id, "driver-node"}
    minority |= {n.node_id for n in rt.groups["clients"].nodes()}
    rt.network.partition([minority, set(rt.nodes) - minority])

    f = driver.submit("clients", "update", "kv", spec.key(1), retries=1)
    rt.run_for(2500)
    assert rt.ledger.commit_count == commits_before
    # The trapped transaction must not be reported committed.
    if f.done:
        assert f.result()[0] != "committed"


def test_partition_heals_and_group_reconciles():
    rt, kv, _clients, driver, spec = build_partitioned_kv()
    f = driver.submit("clients", "write", "kv", spec.key(0), 5)
    rt.run_for(300)
    assert f.result()[0] == "committed"
    old = kv.active_primary()
    rt.network.partition([{old.node.node_id}])
    rt.run_for(1500)
    rt.network.heal()
    rt.run_for(2000)
    rt.quiesce()
    primary = await_primary(rt, kv)
    # The old primary is back in the view, as a member of one view.
    assert old.mymid in primary.cur_view
    viewids = {c.cur_viewid for c in kv.active_cohorts()}
    assert len(viewids) == 1
    rt.check_invariants()
    assert kv.read_object(spec.key(0)) == 5


def test_paper_abc_partition_scenario():
    """Section 4's worked example: A committed a transaction forcing its
    event records to B but not C, then A crashed and recovered, and a
    partition separated B from A and C.  'In this case we cannot form a
    new view until the partition is repaired because A has lost
    information and there are forced events that C does not know.'"""
    rt, kv, clients, driver, spec = build_partitioned_kv(seed=56)
    # A = mid 0 (primary), B = mid 1, C = mid 2.
    a, b, c = kv.cohort(0), kv.cohort(1), kv.cohort(2)
    # Cut A->C and B->C buffer traffic... simplest faithful setup: let C
    # fall behind by severing its links before the transaction runs.
    rt.network.fail_link(a.node.node_id, c.node.node_id)
    rt.network.fail_link(b.node.node_id, c.node.node_id)
    f = driver.submit("clients", "write", "kv", spec.key(0), 9)
    rt.run_for(120)  # commit forced to B only (C is unreachable)
    assert f.result()[0] == "committed"
    assert b.store.get(spec.key(0)).base == 9
    assert c.store.get(spec.key(0)).base == 0  # C never saw it

    # A crashes and recovers (losing volatile state); B partitions away;
    # A's links to C are repaired.
    a.node.crash()
    rt.network.repair_link(a.node.node_id, c.node.node_id)
    rt.network.repair_link(b.node.node_id, c.node.node_id)
    rt.network.partition([{b.node.node_id}])
    a.node.recover()
    rt.run_for(4000)
    # A (crashed, viewid v1) + C (normal backup of v1): condition 3 fails.
    assert kv.active_primary() is None

    # Repairing the partition brings B back: B's normal acceptance carries
    # the forced events, and the view forms without losing the commit.
    rt.network.heal()
    primary = await_primary(rt, kv, deadline=4000)
    rt.quiesce()
    assert primary.store.get(spec.key(0)).base == 9
    rt.check_invariants()


def test_flapping_partition_saftey():
    """Repeated partition/heal cycles never violate safety."""
    rt, kv, _clients, driver, spec = build_partitioned_kv(seed=57)
    outcomes = []
    for round_index in range(4):
        f = driver.submit("clients", "update", "kv", spec.key(round_index % 4))
        rt.run_for(200)
        outcomes.append(f.result()[0] if f.done else "pending")
        nodes = sorted(n.node_id for n in kv.nodes())
        rt.network.partition([{nodes[round_index % 3]}])
        rt.run_for(400)
        rt.network.heal()
        rt.run_for(600)
    rt.quiesce(duration=800)
    rt.check_invariants(require_convergence=False)
    assert "committed" in outcomes  # the system made progress


def test_link_failure_between_backups_tolerated():
    """A severed backup-to-backup link doesn't stop the group: the buffer
    flows primary->backup, so commits continue."""
    rt, kv, _clients, driver, spec = build_partitioned_kv(seed=58)
    primary = kv.active_primary()
    backups = [mid for mid in range(3) if mid != primary.mymid]
    rt.network.fail_link(
        kv.cohort(backups[0]).node.node_id, kv.cohort(backups[1]).node.node_id
    )
    f = driver.submit("clients", "update", "kv", spec.key(0))
    rt.run_for(400)
    assert f.result()[0] == "committed"
