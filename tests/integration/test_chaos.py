"""Seeded chaos: random crashes and partitions with invariants checked.

Each scenario runs a contended bank workload while a failure schedule
injects faults, then asserts the full safety battery: one-copy
serializability of the committed history, conservation of money, no
contradictory outcomes, and replica convergence once an active view
exists and the system quiesces.
"""

import pytest

from repro import EmptyModule, Runtime
from repro.config import ProtocolConfig
from repro.storage.stable import StableStoragePolicy
from repro.workloads.bank import BankAccountsSpec, transfer_program
from repro.workloads.bank import total_balance as spec_total
from repro.workloads.loadgen import run_closed_loop
from repro.workloads.schedules import (
    CrashRecoverySchedule,
    PartitionSchedule,
    kill_primary_every,
)


def build(seed, config=None):
    rt = Runtime(seed=seed, config=config) if config else Runtime(seed=seed)
    spec = BankAccountsSpec(n_accounts=8, opening_balance=100)
    bank = rt.create_group("bank", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("transfer", transfer_program)
    driver = rt.create_driver("driver")
    return rt, bank, clients, driver, spec


def jobs_for(rt, spec, count):
    rng = rt.sim.rng.fork("jobs")
    return [
        (
            "transfer",
            (
                "bank",
                spec.account(rng.randint(0, spec.n_accounts - 1)),
                spec.account(rng.randint(0, spec.n_accounts - 1)),
                rng.randint(1, 10),
            ),
        )
        for _ in range(count)
    ]


def assert_safety(rt, bank, spec):
    rt.quiesce(duration=800)
    rt.check_invariants(require_convergence=False)
    if bank.active_primary() is not None:
        assert spec_total(bank, spec) == spec.n_accounts * spec.opening_balance
        rt.quiesce()
        problems = bank.divergence_report()
        assert not problems, problems


@pytest.mark.parametrize("seed", [11, 23, 37])
def test_crash_churn_preserves_safety(seed):
    rt, bank, _clients, driver, spec = build(seed)
    stats = run_closed_loop(rt, driver, "clients", jobs_for(rt, spec, 50),
                            concurrency=3)
    schedule = CrashRecoverySchedule(
        rt, bank.nodes(), mttf=900.0, mttr=250.0, max_down=1
    )
    schedule.start()
    deadline = rt.sim.now + 60_000
    while stats.submitted < 50 and rt.sim.now < deadline:
        rt.run_for(500)
    schedule.stop()
    assert stats.committed > 0
    assert_safety(rt, bank, spec)


@pytest.mark.parametrize("seed", [5, 17])
def test_partition_storm_preserves_safety(seed):
    rt, bank, _clients, driver, spec = build(seed)
    stats = run_closed_loop(rt, driver, "clients", jobs_for(rt, spec, 40),
                            concurrency=3)
    schedule = PartitionSchedule(
        rt,
        [node.node_id for node in bank.nodes()],
        mean_healthy=500.0,
        mean_partitioned=300.0,
    )
    schedule.start()
    deadline = rt.sim.now + 60_000
    while stats.submitted < 40 and rt.sim.now < deadline:
        rt.run_for(500)
    schedule.stop()
    assert_safety(rt, bank, spec)


def test_combined_crashes_and_partitions():
    rt, bank, _clients, driver, spec = build(seed=71)
    stats = run_closed_loop(rt, driver, "clients", jobs_for(rt, spec, 40),
                            concurrency=2)
    crash = CrashRecoverySchedule(rt, bank.nodes(), mttf=1200.0, mttr=300.0,
                                  max_down=1)
    partition = PartitionSchedule(
        rt, [node.node_id for node in bank.nodes()],
        mean_healthy=800.0, mean_partitioned=250.0,
    )
    crash.start()
    partition.start()
    deadline = rt.sim.now + 80_000
    while stats.submitted < 40 and rt.sim.now < deadline:
        rt.run_for(500)
    crash.stop()
    partition.stop()
    assert_safety(rt, bank, spec)


def test_lossy_network_chaos():
    """Message loss + duplication + primary kills, all at once."""
    from repro.net.link import LinkModel

    rt = Runtime(
        seed=83,
        link=LinkModel(base_delay=1.0, jitter=1.5, loss_probability=0.08,
                       duplicate_probability=0.05),
    )
    spec = BankAccountsSpec(n_accounts=6, opening_balance=100)
    bank = rt.create_group("bank", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    clients.register_program("transfer", transfer_program)
    driver = rt.create_driver("driver")
    stats = run_closed_loop(rt, driver, "clients", jobs_for(rt, spec, 40),
                            concurrency=2)
    kill_primary_every(rt, bank, interval=700.0, count=3, recover_after=350.0)
    deadline = rt.sim.now + 80_000
    while stats.submitted < 40 and rt.sim.now < deadline:
        rt.run_for(500)
    assert stats.committed > 0
    assert_safety(rt, bank, spec)


def test_chaos_with_ups_storage_allows_deep_churn():
    """With section-4.2 NVRAM hardening, even overlapping double-crashes
    (temporary catastrophes) resolve with full safety."""
    config = ProtocolConfig(storage_policy=StableStoragePolicy.ALL)
    rt, bank, _clients, driver, spec = build(seed=97, config=config)
    stats = run_closed_loop(rt, driver, "clients", jobs_for(rt, spec, 40),
                            concurrency=2)
    schedule = CrashRecoverySchedule(rt, bank.nodes(), mttf=500.0, mttr=200.0)
    schedule.start()
    deadline = rt.sim.now + 80_000
    while stats.submitted < 40 and rt.sim.now < deadline:
        rt.run_for(500)
    schedule.stop()
    rt.run_for(3000)  # let everyone recover and re-form
    assert_safety(rt, bank, spec)
    assert stats.committed > 0


def test_chaos_determinism():
    """The same seed reproduces the exact same run, byte for byte."""

    def run_once():
        rt, bank, _clients, driver, spec = build(seed=123)
        stats = run_closed_loop(rt, driver, "clients", jobs_for(rt, spec, 20),
                                concurrency=2)
        kill_primary_every(rt, bank, interval=300.0, count=2, recover_after=150.0)
        deadline = rt.sim.now + 30_000
        while stats.submitted < 20 and rt.sim.now < deadline:
            rt.run_for(500)
        return (
            stats.committed,
            stats.aborted,
            rt.sim.events_processed,
            sorted(str(a) for a in rt.ledger.committed),
            dict(rt.metrics.messages_sent),
        )

    assert run_once() == run_once()
