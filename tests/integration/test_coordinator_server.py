"""The coordinator-server and unreplicated client agents (section 3.5)."""


from repro import EmptyModule, Runtime
from repro.workloads.kv import KVStoreSpec


def agent_incr(txn, key):
    result = yield txn.call("kv", "incr", key, 1)
    return result


def agent_two_keys(txn, key_a, key_b):
    a = yield txn.call("kv", "incr", key_a, 1)
    b = yield txn.call("kv", "incr", key_b, 1)
    return (a, b)


def build(seed=41, kv_cohorts=3, coord_cohorts=3):
    rt = Runtime(seed=seed)
    spec = KVStoreSpec(n_keys=8)
    kv = rt.create_group("kv", spec, n_cohorts=kv_cohorts)
    rt.create_group("coordsvc", EmptyModule(), n_cohorts=coord_cohorts)
    agent = rt.create_agent("agent", "coordsvc")
    return rt, kv, agent, spec


def test_agent_transaction_commits():
    rt, kv, agent, spec = build()
    outcome = agent.run_transaction(agent_incr, spec.key(0))
    rt.run_for(800)
    assert outcome.result() == ("committed", 1)
    assert kv.read_object(spec.key(0)) == 1


def test_agent_aid_names_coordinator_group():
    """'Its groupid is part of the transaction's aid, so that participants
    know who it is.'"""
    rt, kv, agent, spec = build()
    agent.run_transaction(agent_incr, spec.key(0))
    rt.run_for(800)
    aid = next(iter(rt.ledger.committed))
    assert aid.groupid == "coordsvc"


def test_agent_abort_via_program():
    rt, kv, agent, spec = build()

    def aborting(txn):
        yield txn.call("kv", "incr", spec.key(1), 1)
        txn.abort("changed my mind")

    outcome = agent.run_transaction(aborting)
    rt.run_for(800)
    assert outcome.result()[0] == "aborted"
    rt.quiesce()
    assert kv.read_object(spec.key(1)) == 0


def test_multiple_agents_interleave():
    rt, kv, agent, spec = build()
    agent2 = rt.create_agent("agent2", "coordsvc")
    f1 = agent.run_transaction(agent_incr, spec.key(2))
    f2 = agent2.run_transaction(agent_incr, spec.key(2))
    rt.run_for(2000)
    outcomes = [f.result()[0] for f in (f1, f2)]
    assert outcomes.count("committed") == 2
    assert kv.read_object(spec.key(2)) == 2


def test_commit_survives_coordinator_primary_crash():
    """The coordinator-server is replicated: its primary crashing after the
    committing record is forced must not lose the transaction."""
    rt, kv, agent, spec = build(seed=42)
    outcome = agent.run_transaction(agent_two_keys, spec.key(3), spec.key(4))
    rt.run_for(600)
    assert outcome.result()[0] == "committed"
    coordsvc = rt.groups["coordsvc"]
    coordsvc.crash_primary()
    rt.run_for(2000)
    rt.quiesce()
    assert kv.read_object(spec.key(3)) == 1
    assert kv.read_object(spec.key(4)) == 1
    rt.check_invariants()


def test_agent_retries_after_coordinator_failover():
    rt, kv, agent, spec = build(seed=43)
    first = agent.run_transaction(agent_incr, spec.key(5))
    rt.run_for(600)
    assert first.result()[0] == "committed"
    rt.groups["coordsvc"].crash_primary()
    rt.run_for(300)
    second = agent.run_transaction(agent_incr, spec.key(5))
    rt.run_for(2500)
    assert second.result()[0] == "committed"
    assert kv.read_object(spec.key(5)) == 2


def test_dead_client_unilaterally_aborted():
    """'If no reply is forthcoming, it can abort the transaction
    unilaterally' -- and the participant's locks come free."""
    rt, kv, agent, spec = build(seed=44)
    from repro.sim.process import sleep

    def stalls(txn):
        yield txn.call("kv", "incr", spec.key(6), 1)
        yield sleep(50_000.0)

    agent.run_transaction(stalls)
    rt.run_for(200)
    primary = kv.active_primary()
    assert primary.lockmgr.holders_of(spec.key(6))  # lock held
    agent.node.crash()
    rt.run_for(4000)
    primary = kv.active_primary()
    assert primary.lockmgr.holders_of(spec.key(6)) == {}
    assert any("unresponsive" in r for r in rt.ledger.aborted.values())
    assert kv.read_object(spec.key(6)) == 0


def test_live_client_not_aborted_by_probe():
    """A probe answered 'still active' leaves the transaction alone."""
    rt, kv, agent, spec = build(seed=45)
    from repro.sim.process import sleep

    def slow_but_alive(txn):
        yield txn.call("kv", "incr", spec.key(7), 1)
        yield sleep(700.0)  # long think time, but the client is up
        result = yield txn.call("kv", "incr", spec.key(7), 1)
        return result

    outcome = agent.run_transaction(slow_but_alive)
    rt.run_for(5000)
    assert outcome.result()[0] == "committed"
    assert kv.read_object(spec.key(7)) == 2


def test_duplicate_finish_request_answered_from_outcome():
    """A lost FinishTxnReply causes the agent to re-send; the
    coordinator-server answers from its outcomes table."""
    rt, kv, agent, spec = build(seed=46)
    outcome = agent.run_transaction(agent_incr, spec.key(0))
    rt.run_for(1500)
    assert outcome.result()[0] == "committed"
    # Simulate a duplicate finish arriving later.
    from repro.core import messages as m

    coordsvc_primary = rt.groups["coordsvc"].active_primary()
    aid = next(iter(rt.ledger.committed))
    replies = []
    original = agent.handle_message

    def spy(message, source):
        if isinstance(message, m.FinishTxnReplyMsg):
            replies.append(message)
        original(message, source)

    agent.handle_message = spy
    rt.network.send(
        agent.address,
        coordsvc_primary.address,
        m.FinishTxnMsg(aid=aid, decision="commit", pset_pairs=(),
                       aborted_subactions=(), client=agent.address),
    )
    rt.run_for(100)
    assert replies and replies[0].outcome == "committed"
