"""Structural (topology) link models vs fault overrides.

Structural models are the network's permanent shape (repro.geo installs
them from a Topology); fault overrides are injected disruptions.  The
two layers must stay separable: faults win while active, healing a fault
never flattens the geography, and :meth:`Network.disrupted` -- which
pauses repro.live liveness windows -- must count only fault state.
"""

import dataclasses

from repro.net.link import LinkModel
from repro.net.messages import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.node import Actor, Node

SLOW = LinkModel(base_delay=20.0, jitter=0.0)
FAST = LinkModel(base_delay=2.0, jitter=0.0)
FAULT = LinkModel(base_delay=80.0, jitter=0.0)


@dataclasses.dataclass
class Ping(Message):
    payload: str = "ping"


class Sink(Actor):
    def __init__(self, node, address, network):
        super().__init__(node, address)
        self.received = []
        network.register(self)

    def handle_message(self, message, source):
        self.received.append((message, source, self.sim.now))


def build(n=2, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, link=LinkModel(base_delay=1.0, jitter=0.0))
    nodes = [Node(sim, f"n{i}") for i in range(n)]
    actors = [Sink(nodes[i], f"a{i}", net) for i in range(n)]
    return sim, net, nodes, actors


def arrival(actor, index=-1):
    return actor.received[index][2]


# -- structural resolution ---------------------------------------------------


def test_structural_link_shapes_delay():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == 20.0


def test_structural_link_is_directional():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.send("a1", "a0", Ping())  # reverse direction not installed
    sim.run()
    assert arrival(actors[0]) == 1.0


def test_unplaced_pair_falls_through_to_default_link():
    sim, net, _nodes, actors = build(n=3)
    net.set_structural_link("n0", "n1", SLOW)
    net.send("a0", "a2", Ping())
    sim.run()
    assert arrival(actors[2]) == 1.0


def test_unplaced_pair_tracks_default_link_swap():
    """The None cache sentinel means "use the *current* default", so a
    lossy()-style default swap still reaches pairs without structure."""
    sim, net, _nodes, actors = build(n=3)
    net.set_structural_link("n0", "n1", SLOW)
    net.send("a0", "a2", Ping())  # primes the cache with None
    sim.run()
    net.link = FAST
    net.send("a0", "a2", Ping())
    at = sim.now
    sim.run()
    assert arrival(actors[2]) == at + 2.0


def test_structural_install_invalidates_cache():
    sim, net, _nodes, actors = build()
    net.send("a0", "a1", Ping())  # caches "no structure" for (a0, a1)
    sim.run()
    net.set_structural_link("n0", "n1", SLOW)
    at = sim.now
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == at + 20.0


def test_clear_structural_links_restores_flat_network():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.clear_structural_links()
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == 1.0
    assert net.structural_links() == {}


# -- fault overrides vs structure --------------------------------------------


def test_fault_override_beats_structural_model():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.set_link_model("a0", "a1", FAULT)
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == 80.0


def test_clearing_fault_override_reveals_structure_again():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.set_link_model("a0", "a1", FAULT)
    net.clear_link_override("a0", "a1")
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == 20.0


def test_clear_link_overrides_keeps_structural_links():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.set_link_model("a0", "a1", FAULT)
    net.clear_link_overrides()
    assert net.link_overrides() == {}
    assert ("n0", "n1") in net.structural_links()
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == 20.0


# -- disrupted(): only fault state counts ------------------------------------


def test_structural_links_are_not_a_disruption():
    _sim, net, _nodes, _actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.set_structural_link("n1", "n0", SLOW)
    assert not net.disrupted()


def test_fault_override_is_a_disruption_until_cleared():
    _sim, net, _nodes, _actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.set_link_model("a0", "a1", FAULT)
    assert net.disrupted()
    net.clear_link_override("a0", "a1")
    assert not net.disrupted()  # structure alone never disrupts


def test_partition_and_heal_leave_structure_intact():
    sim, net, _nodes, actors = build()
    net.set_structural_link("n0", "n1", SLOW)
    net.partition([{"n0"}, {"n1"}])
    assert net.disrupted()
    net.heal()
    assert not net.disrupted()
    net.send("a0", "a1", Ping())
    sim.run()
    assert arrival(actors[1]) == 20.0


# -- set_link_model_pair and override directionality -------------------------


def test_set_link_model_pair_overrides_both_directions():
    sim, net, _nodes, actors = build()
    net.set_link_model_pair("a0", "a1", FAULT)
    net.send("a0", "a1", Ping())
    net.send("a1", "a0", Ping())
    sim.run()
    assert arrival(actors[1]) == 80.0
    assert arrival(actors[0]) == 80.0


def test_set_link_model_is_one_directed_pair_only():
    sim, net, _nodes, actors = build()
    net.set_link_model("a0", "a1", FAULT)
    net.send("a0", "a1", Ping())
    net.send("a1", "a0", Ping())
    sim.run()
    assert arrival(actors[1]) == 80.0
    assert arrival(actors[0]) == 1.0  # return path untouched


def test_clear_link_override_is_directional():
    sim, net, _nodes, actors = build()
    net.set_link_model_pair("a0", "a1", FAULT)
    net.clear_link_override("a0", "a1")
    assert net.disrupted()  # a1 -> a0 still overridden
    net.send("a0", "a1", Ping())
    net.send("a1", "a0", Ping())
    sim.run()
    assert arrival(actors[1]) == 1.0
    assert arrival(actors[0]) == 80.0


def test_oneway_repair_leaves_other_direction_failed():
    """repair_link_oneway on one direction must not heal the reverse --
    and the leftover directed failure still counts as a disruption."""
    sim, net, _nodes, actors = build()
    net.fail_link_oneway("n0", "n1")
    net.fail_link_oneway("n1", "n0")
    net.repair_link_oneway("n0", "n1")
    assert net.disrupted()
    net.send("a0", "a1", Ping())
    net.send("a1", "a0", Ping())
    sim.run()
    assert len(actors[1].received) == 1
    assert actors[0].received == []
    net.repair_link_oneway("n1", "n0")
    assert not net.disrupted()
