"""Tests for link models."""

import pytest

from repro.net.link import LAN, LOSSY, WAN, LinkModel
from repro.sim.rng import SeededRng


def test_defaults():
    assert LAN.loss_probability == 0.0
    assert LOSSY.loss_probability > 0.0


def test_wan_preset():
    # Partition-free but slow and jittery: loss/dup without split brain.
    assert WAN.base_delay > LAN.base_delay
    assert WAN.jitter > LOSSY.jitter
    assert 0.0 < WAN.loss_probability < 1.0
    assert 0.0 < WAN.duplicate_probability < 1.0


def test_validation():
    with pytest.raises(ValueError):
        LinkModel(base_delay=-1.0)
    with pytest.raises(ValueError):
        LinkModel(jitter=-0.1)
    with pytest.raises(ValueError):
        LinkModel(loss_probability=1.0)
    with pytest.raises(ValueError):
        LinkModel(loss_probability=-0.1)
    with pytest.raises(ValueError):
        LinkModel(duplicate_probability=1.1)
    # Both probabilities share the same half-open [0, 1) bound: a link
    # that duplicates every message forever would never quiesce.
    with pytest.raises(ValueError):
        LinkModel(duplicate_probability=1.0)
    with pytest.raises(ValueError):
        LinkModel(duplicate_probability=-0.1)


def test_delay_within_bounds():
    rng = SeededRng(1)
    model = LinkModel(base_delay=2.0, jitter=0.5)
    for _ in range(200):
        delay = model.draw_delay(rng)
        assert 2.0 <= delay <= 2.5


def test_zero_jitter_constant_delay():
    rng = SeededRng(2)
    model = LinkModel(base_delay=3.0, jitter=0.0)
    assert {model.draw_delay(rng) for _ in range(10)} == {3.0}


def test_drop_rate_roughly_matches():
    rng = SeededRng(3)
    model = LinkModel(loss_probability=0.25)
    drops = sum(model.drops(rng) for _ in range(4000))
    assert abs(drops / 4000 - 0.25) < 0.05


def test_duplicates_rate():
    rng = SeededRng(4)
    model = LinkModel(duplicate_probability=0.5)
    dups = sum(model.duplicates(rng) for _ in range(2000))
    assert abs(dups / 2000 - 0.5) < 0.06
