"""Tests for the simulated network: delivery, loss, partitions, dedup."""

import dataclasses

import pytest

from repro.net.link import LinkModel
from repro.net.messages import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.node import Actor, Node


@dataclasses.dataclass
class Ping(Message):
    payload: str = "ping"


class Sink(Actor):
    def __init__(self, node, address, network):
        super().__init__(node, address)
        self.received = []
        network.register(self)

    def handle_message(self, message, source):
        self.received.append((message, source, self.sim.now))


def build(link=LinkModel(base_delay=1.0, jitter=0.0), seed=0, n=2):
    sim = Simulator(seed=seed)
    net = Network(sim, link=link)
    nodes = [Node(sim, f"n{i}") for i in range(n)]
    actors = [Sink(nodes[i], f"a{i}", net) for i in range(n)]
    return sim, net, nodes, actors


def test_basic_delivery_with_delay():
    sim, net, _nodes, actors = build()
    net.send("a0", "a1", Ping())
    sim.run()
    assert len(actors[1].received) == 1
    message, source, at = actors[1].received[0]
    assert source == "a0"
    assert at == 1.0


def test_duplicate_registration_rejected():
    sim, net, nodes, _actors = build()
    with pytest.raises(ValueError):
        Sink(nodes[0], "a0", net)


def test_message_to_crashed_node_lost():
    sim, net, nodes, actors = build()
    nodes[1].crash()
    net.send("a0", "a1", Ping())
    sim.run()
    assert actors[1].received == []
    assert net.metrics.messages_dropped["Ping"] == 1


def test_crashed_node_cannot_send():
    sim, net, nodes, actors = build()
    nodes[0].crash()
    net.send("a0", "a1", Ping())
    sim.run()
    assert actors[1].received == []


def test_crash_during_flight_loses_message():
    sim, net, nodes, actors = build()
    net.send("a0", "a1", Ping())
    sim.schedule(0.5, nodes[1].crash)
    sim.run()
    assert actors[1].received == []


def test_partition_blocks_cross_traffic():
    sim, net, _nodes, actors = build()
    net.partition([{"n0"}, {"n1"}])
    net.send("a0", "a1", Ping())
    sim.run()
    assert actors[1].received == []


def test_partition_allows_same_block():
    sim, net, _nodes, actors = build(n=3)
    net.partition([{"n0", "n1"}, {"n2"}])
    net.send("a0", "a1", Ping())
    net.send("a0", "a2", Ping())
    sim.run()
    assert len(actors[1].received) == 1
    assert actors[2].received == []


def test_heal_restores_delivery():
    sim, net, _nodes, actors = build()
    net.partition([{"n0"}, {"n1"}])
    net.heal()
    net.send("a0", "a1", Ping())
    sim.run()
    assert len(actors[1].received) == 1


def test_partition_formed_mid_flight_blocks_delivery():
    sim, net, _nodes, actors = build()
    net.send("a0", "a1", Ping())
    sim.schedule(0.5, net.partition, [{"n0"}, {"n1"}])
    sim.run()
    assert actors[1].received == []


def test_unlisted_nodes_form_leftover_block():
    sim, net, _nodes, actors = build(n=3)
    net.partition([{"n0"}])
    net.send("a1", "a2", Ping())  # both in the implicit leftover block
    net.send("a0", "a1", Ping())
    sim.run()
    assert len(actors[2].received) == 1
    assert actors[1].received == []


def test_link_failure_blocks_pair_only():
    sim, net, _nodes, actors = build(n=3)
    net.fail_link("n0", "n1")
    net.send("a0", "a1", Ping())
    net.send("a0", "a2", Ping())
    sim.run()
    assert actors[1].received == []
    assert len(actors[2].received) == 1
    net.repair_link("n0", "n1")
    net.send("a0", "a1", Ping())
    sim.run()
    assert len(actors[1].received) == 1


def test_loss_probability_drops_messages():
    link = LinkModel(base_delay=1.0, jitter=0.0, loss_probability=0.5)
    sim, net, _nodes, actors = build(link=link, seed=7)
    for _ in range(200):
        net.send("a0", "a1", Ping())
    sim.run()
    delivered = len(actors[1].received)
    assert 50 < delivered < 150  # ~100 expected


def test_duplicates_suppressed_at_delivery():
    """Network-generated duplicates never reach the actor twice (3.1)."""
    link = LinkModel(base_delay=1.0, jitter=0.5, duplicate_probability=0.999)
    sim, net, _nodes, actors = build(link=link, seed=3)
    for _ in range(50):
        net.send("a0", "a1", Ping())
    sim.run()
    assert len(actors[1].received) == 50
    assert net.metrics.messages_duplicated["Ping"] >= 40


def test_jitter_reorders_messages():
    link = LinkModel(base_delay=1.0, jitter=5.0)
    sim, net, _nodes, actors = build(link=link, seed=11)

    @dataclasses.dataclass
    class Seq(Message):
        n: int = 0

    for index in range(30):
        net.send("a0", "a1", Seq(n=index))
    sim.run()
    order = [message.n for message, _src, _at in actors[1].received]
    assert sorted(order) == list(range(30))
    assert order != list(range(30))  # at least one inversion


def test_per_pair_link_override():
    sim, net, _nodes, actors = build(n=3)
    net.set_link_model("a0", "a1", LinkModel(base_delay=50.0, jitter=0.0))
    net.send("a0", "a1", Ping())
    net.send("a0", "a2", Ping())
    sim.run()
    assert actors[2].received[0][2] == 1.0
    assert actors[1].received[0][2] == 50.0


def test_metrics_accounting():
    sim, net, _nodes, _actors = build()
    net.send("a0", "a1", Ping())
    sim.run()
    assert net.metrics.messages_sent["Ping"] == 1
    assert net.metrics.messages_delivered["Ping"] == 1
    assert net.metrics.bytes_sent["Ping"] > 0


def test_send_to_unknown_address_is_dropped():
    sim, net, _nodes, _actors = build()
    net.send("a0", "nowhere", Ping())
    sim.run()
    assert net.metrics.messages_dropped["Ping"] == 1
