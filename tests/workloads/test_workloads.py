"""Tests for workload specs, the load generator, and failure schedules."""


from repro import EmptyModule, Runtime
from repro.workloads.airline import AirlineSpec, check_airline_invariants
from repro.workloads.bank import BankAccountsSpec
from repro.workloads.kv import KVStoreSpec
from repro.workloads.loadgen import run_closed_loop
from repro.workloads.schedules import (
    CrashRecoverySchedule,
    PartitionSchedule,
    kill_primary_every,
)


# -- specs -----------------------------------------------------------------


def test_kv_spec_key_space():
    spec = KVStoreSpec(n_keys=4)
    assert spec.key(0) == "key0"
    assert spec.key(5) == "key1"  # wraps
    assert len(spec.initial_objects()) == 4


def test_bank_spec_accounts():
    spec = BankAccountsSpec(n_accounts=3, opening_balance=50)
    objects = spec.initial_objects()
    assert len(objects) == 3
    assert all(value == 50 for value in objects.values())


def test_airline_spec_objects():
    spec = AirlineSpec(flights=("F1",), capacity=10)
    objects = spec.initial_objects()
    assert objects == {"F1:left": 10, "F1:booked": 0}


def build_airline(seed=2):
    rt = Runtime(seed=seed)
    spec = AirlineSpec(flights=("F1",), capacity=5)
    airline = rt.create_group("airline", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    from repro.workloads.airline import book_trip_program

    clients.register_program("book", book_trip_program)
    driver = rt.create_driver("driver")
    return rt, airline, clients, driver, spec


def test_airline_never_oversells():
    rt, airline, _clients, driver, spec = build_airline()
    futures = [
        driver.submit("clients", "book", "airline", "F1", 2) for _ in range(5)
    ]
    rt.run_for(3000)
    rt.quiesce()
    committed = sum(1 for f in futures if f.done and f.result()[0] == "committed")
    assert committed == 2  # 5 seats / 2 per booking
    check_airline_invariants(airline, spec)


def test_airline_cancel_restores_seats():
    rt, airline, clients, driver, spec = build_airline(seed=3)
    from repro import transaction_program

    @transaction_program
    def cancel(txn, flight, seats):
        result = yield txn.call("airline", "cancel", flight, seats)
        return result

    clients.register_program("cancel", cancel)
    f = driver.submit("clients", "book", "airline", "F1", 3)
    rt.run_for(300)
    assert f.result()[0] == "committed"
    f = driver.submit("clients", "cancel", "F1", 2)
    rt.run_for(300)
    assert f.result()[0] == "committed"
    rt.quiesce()
    assert airline.read_object("F1:left") == 4
    check_airline_invariants(airline, spec)


# -- closed loop ---------------------------------------------------------------


def test_closed_loop_runs_all_jobs():
    rt = Runtime(seed=4)
    spec = KVStoreSpec(n_keys=4)
    rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    from repro.workloads.kv import write_program

    clients.register_program("write", write_program)
    driver = rt.create_driver("driver")
    jobs = [("write", ("kv", spec.key(i), i)) for i in range(10)]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=2)
    rt.run_for(5000)
    assert stats.submitted == 10
    assert stats.committed == 10
    assert stats.throughput > 0
    assert stats.mean_latency > 0
    assert stats.abort_rate == 0


def test_closed_loop_think_time_spreads_load():
    rt = Runtime(seed=5)
    spec = KVStoreSpec(n_keys=4)
    rt.create_group("kv", spec, n_cohorts=3)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=3)
    from repro.workloads.kv import write_program

    clients.register_program("write", write_program)
    driver = rt.create_driver("driver")
    jobs = [("write", ("kv", spec.key(i), i)) for i in range(5)]
    stats = run_closed_loop(rt, driver, "clients", jobs, think_time=100.0)
    rt.run_for(5000)
    assert stats.committed == 5
    assert stats.duration > 400  # at least the think time between jobs


# -- schedules -------------------------------------------------------------------


def test_crash_schedule_respects_max_down():
    rt = Runtime(seed=6)
    nodes = [rt.create_node(f"n{i}") for i in range(3)]
    schedule = CrashRecoverySchedule(rt, nodes, mttf=50.0, mttr=100.0, max_down=1)
    schedule.start()
    worst = 0
    for _ in range(100):
        rt.run_for(20)
        worst = max(worst, sum(1 for n in nodes if not n.up))
    schedule.stop()
    assert worst <= 1


def test_crash_schedule_records_events():
    rt = Runtime(seed=7)
    nodes = [rt.create_node(f"n{i}") for i in range(2)]
    schedule = CrashRecoverySchedule(rt, nodes, mttf=100.0, mttr=50.0)
    schedule.start()
    rt.run_for(2000)
    schedule.stop()
    kinds = {event.kind for event in schedule.events}
    assert kinds == {"crash", "recover"}


def test_partition_schedule_forms_and_heals():
    rt = Runtime(seed=8)
    node_ids = [rt.create_node(f"n{i}").node_id for i in range(4)]
    schedule = PartitionSchedule(rt, node_ids, mean_healthy=50.0,
                                 mean_partitioned=50.0)
    schedule.start()
    rt.run_for(2000)
    schedule.stop()
    assert schedule.partitions_formed > 0
    assert rt.network._partition is None  # stop() heals


def test_kill_primary_every_counts():
    from tests.conftest import build_counter_system

    rt, counter, _clients, _driver = build_counter_system(seed=9)
    kill_primary_every(rt, counter, interval=100.0, count=1, recover_after=100.0)
    rt.run_for(120)
    assert any(not node.up for node in counter.nodes())
    rt.run_for(200)
    assert all(node.up for node in counter.nodes())
