"""Tests for the three-service order workload."""


from repro import EmptyModule, Runtime
from repro.workloads.loadgen import run_closed_loop
from repro.workloads.orders import (
    InventorySpec,
    OrderLogSpec,
    PaymentsSpec,
    check_order_invariants,
    place_order_program,
)
from repro.workloads.schedules import kill_primary_every


def build(seed=1, n_cohorts=3, stock=20, balance=100):
    rt = Runtime(seed=seed)
    inventory_spec = InventorySpec(items=("widget",), stock=stock)
    payments_spec = PaymentsSpec(customers=("alice", "bob"), balance=balance)
    inventory = rt.create_group("inventory", inventory_spec, n_cohorts=n_cohorts)
    payments = rt.create_group("payments", payments_spec, n_cohorts=n_cohorts)
    orders = rt.create_group("orders", OrderLogSpec(), n_cohorts=n_cohorts)
    clients = rt.create_group("clients", EmptyModule(), n_cohorts=n_cohorts)
    clients.register_program("place_order", place_order_program)
    driver = rt.create_driver("driver")
    return rt, inventory, payments, orders, driver, inventory_spec, payments_spec


def test_single_order_commits_across_three_groups():
    rt, inventory, payments, orders, driver, inv_spec, pay_spec = build()
    future = driver.submit("clients", "place_order", "alice", "widget", 2, 5)
    rt.run_for(500)
    outcome, order_id = future.result()
    assert outcome == "committed"
    assert order_id == 0
    rt.quiesce()
    assert inventory.read_object("widget:stock") == 18
    assert payments.read_object("alice") == 90
    assert payments.read_object("merchant:revenue") == 10
    assert orders.read_object("order_count") == 1
    check_order_invariants(inventory, payments, orders, inv_spec, pay_spec)
    rt.check_invariants()


def test_out_of_stock_aborts_whole_order():
    rt, inventory, payments, orders, driver, inv_spec, pay_spec = build(stock=1)
    future = driver.submit("clients", "place_order", "alice", "widget", 5, 5)
    rt.run_for(500)
    assert future.result()[0] == "aborted"
    rt.quiesce()
    assert payments.read_object("alice") == 100  # nothing charged
    assert orders.read_object("order_count") == 0
    check_order_invariants(inventory, payments, orders, inv_spec, pay_spec)


def test_insufficient_funds_rolls_back_reservation():
    """The inventory call succeeded before the payment aborted; its
    tentative reservation must be discarded everywhere."""
    rt, inventory, payments, orders, driver, inv_spec, pay_spec = build(balance=3)
    future = driver.submit("clients", "place_order", "alice", "widget", 2, 5)
    rt.run_for(500)
    assert future.result()[0] == "aborted"
    rt.quiesce()
    assert inventory.read_object("widget:stock") == 20  # reservation undone
    assert orders.read_object("order_count") == 0
    check_order_invariants(inventory, payments, orders, inv_spec, pay_spec)


def test_order_ids_are_dense_and_unique():
    rt, inventory, payments, orders, driver, inv_spec, pay_spec = build()
    futures = [
        driver.submit("clients", "place_order", "alice", "widget", 1, 2)
        for _ in range(4)
    ]
    rt.run_for(3000)
    ids = sorted(f.result()[1] for f in futures if f.result()[0] == "committed")
    assert ids == list(range(len(ids)))
    rt.quiesce()
    check_order_invariants(inventory, payments, orders, inv_spec, pay_spec)


def test_books_balance_under_failures():
    rt, inventory, payments, orders, driver, inv_spec, pay_spec = build(
        seed=5, stock=30, balance=200
    )
    rng = rt.sim.rng.fork("jobs")
    jobs = [
        ("place_order",
         (rng.choice(["alice", "bob"]), "widget", rng.randint(1, 3), 4))
        for _ in range(25)
    ]
    stats = run_closed_loop(rt, driver, "clients", jobs, concurrency=2)
    kill_primary_every(rt, inventory, interval=300.0, count=2, recover_after=150.0)
    deadline = rt.sim.now + 40_000
    while stats.submitted < len(jobs) and rt.sim.now < deadline:
        rt.run_for(500)
    rt.run_for(1500)
    rt.quiesce()
    check_order_invariants(inventory, payments, orders, inv_spec, pay_spec)
    rt.check_invariants(require_convergence=False)
    assert stats.committed > 0
