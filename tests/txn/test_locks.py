"""Tests for the strict-2PL lock manager and versioned objects."""

import pytest
from hypothesis import given, strategies as st

from repro.txn.locks import LockManager
from repro.txn.objects import READ, WRITE, ObjectStore


def build():
    store = ObjectStore()
    store.create("x", 0)
    store.create("y", 10)
    return store, LockManager(store)


def test_uncontended_read_granted_immediately():
    _store, locks = build()
    future = locks.acquire("x", "t1", READ)
    assert future.done


def test_shared_reads():
    _store, locks = build()
    assert locks.acquire("x", "t1", READ).done
    assert locks.acquire("x", "t2", READ).done
    assert locks.acquire("x", "t3", READ).done


def test_write_excludes_write():
    _store, locks = build()
    assert locks.acquire("x", "t1", WRITE).done
    blocked = locks.acquire("x", "t2", WRITE)
    assert not blocked.done


def test_write_excludes_read():
    _store, locks = build()
    assert locks.acquire("x", "t1", WRITE).done
    assert not locks.acquire("x", "t2", READ).done


def test_read_blocks_write_until_release():
    _store, locks = build()
    assert locks.acquire("x", "t1", READ).done
    blocked = locks.acquire("x", "t2", WRITE)
    assert not blocked.done
    locks.discard("t1")
    assert blocked.done


def test_reentrant_read_then_read():
    _store, locks = build()
    assert locks.acquire("x", "t1", READ).done
    assert locks.acquire("x", "t1", READ).done


def test_upgrade_sole_reader():
    _store, locks = build()
    assert locks.acquire("x", "t1", READ).done
    assert locks.acquire("x", "t1", WRITE).done
    assert locks.holders_of("x") == {"t1": WRITE}


def test_upgrade_blocked_by_other_reader():
    _store, locks = build()
    assert locks.acquire("x", "t1", READ).done
    assert locks.acquire("x", "t2", READ).done
    upgrade = locks.acquire("x", "t1", WRITE)
    assert not upgrade.done
    locks.discard("t2")
    assert upgrade.done


def test_write_then_read_reentrant():
    _store, locks = build()
    assert locks.acquire("x", "t1", WRITE).done
    assert locks.acquire("x", "t1", READ).done
    assert locks.holders_of("x") == {"t1": WRITE}


def test_fifo_no_overtaking():
    """A read must not overtake a queued write (writer starvation guard)."""
    _store, locks = build()
    assert locks.acquire("x", "t1", READ).done
    writer = locks.acquire("x", "t2", WRITE)
    late_reader = locks.acquire("x", "t3", READ)
    assert not writer.done
    assert not late_reader.done
    locks.discard("t1")
    assert writer.done
    assert not late_reader.done
    locks.discard("t2")
    assert late_reader.done


def test_compatible_prefix_granted_together():
    _store, locks = build()
    assert locks.acquire("x", "t1", WRITE).done
    r1 = locks.acquire("x", "t2", READ)
    r2 = locks.acquire("x", "t3", READ)
    w = locks.acquire("x", "t4", WRITE)
    locks.discard("t1")
    assert r1.done and r2.done
    assert not w.done


def test_record_write_requires_write_lock():
    _store, locks = build()
    locks.acquire("x", "t1", READ)
    with pytest.raises(ValueError):
        locks.record_write("x", "t1", 5)


def test_read_value_sees_own_tentative():
    _store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 42)
    assert locks.read_value("x", "t1") == 42


def test_other_txn_does_not_see_tentative():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 42)
    assert store.get("x").base == 0


def test_install_makes_tentative_base_and_bumps_version():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 42)
    changed = locks.install("t1")
    assert changed == ["x"]
    assert store.get("x").base == 42
    assert store.get("x").version == 1
    assert locks.holders_of("x") == {}


def test_install_read_only_does_not_bump_version():
    store, locks = build()
    locks.acquire("x", "t1", READ)
    assert locks.install("t1") == []
    assert store.get("x").version == 0


def test_discard_drops_tentative():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 42)
    locks.discard("t1")
    assert store.get("x").base == 0
    assert locks.holders_of("x") == {}


def test_release_reads_keeps_writes():
    _store, locks = build()
    locks.acquire("x", "t1", READ)
    locks.acquire("y", "t1", WRITE)
    locks.release_reads("t1")
    assert locks.locks_held_by("t1") == {"y": WRITE}


def test_release_reads_wakes_waiting_writer():
    _store, locks = build()
    locks.acquire("x", "t1", READ)
    blocked = locks.acquire("x", "t2", WRITE)
    locks.release_reads("t1")
    assert blocked.done


def test_cancel_waits_cancels_future():
    _store, locks = build()
    locks.acquire("x", "t1", WRITE)
    blocked = locks.acquire("x", "t2", WRITE)
    locks.cancel_waits("t2")
    assert blocked.cancelled


def test_cancel_waits_pumps_queue():
    _store, locks = build()
    locks.acquire("x", "t1", READ)
    w = locks.acquire("x", "t2", WRITE)
    r = locks.acquire("x", "t3", READ)
    locks.cancel_waits("t2")
    assert not w.done or w.cancelled
    assert r.done  # reader is now compatible with the head reader


def test_last_write_wins_within_txn():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 1)
    locks.record_write("x", "t1", 2)
    locks.install("t1")
    assert store.get("x").base == 2
    assert store.get("x").version == 1


def test_subaction_discard_keeps_other_subactions():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 1, subaction=1)
    locks.record_write("x", "t1", 2, subaction=2)
    locks.discard_subaction("t1", 2)
    locks.install("t1")
    assert store.get("x").base == 1


def test_subaction_discard_all_writes_degrades_lock():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 1, subaction=1)
    locks.discard_subaction("t1", 1)
    assert locks.holders_of("x") == {"t1": READ}


def test_reset_clears_everything():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    blocked = locks.acquire("x", "t2", WRITE)
    locks.reset()
    assert locks.holders_of("x") == {}
    assert blocked.cancelled


def test_store_snapshot_restore_roundtrip():
    store, locks = build()
    locks.acquire("x", "t1", WRITE)
    locks.record_write("x", "t1", 9)
    locks.install("t1")
    snapshot = store.snapshot()
    other = ObjectStore()
    other.restore(snapshot)
    assert other.get("x").base == 9
    assert other.get("x").version == 1
    assert other.get("y").base == 10


# -- property-based tests -----------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["t1", "t2", "t3"]),
        st.sampled_from([READ, WRITE]),
        st.sampled_from(["x", "y"]),
    ),
    max_size=25,
)


@given(ops)
def test_no_conflicting_grants_ever(operations):
    """Invariant: at most one writer per object; never writer+reader mix."""
    store = ObjectStore()
    store.create("x", 0)
    store.create("y", 0)
    locks = LockManager(store)
    for txn, kind, uid in operations:
        locks.acquire(uid, txn, kind)
        for obj_uid in ("x", "y"):
            holders = locks.holders_of(obj_uid)
            writers = [t for t, k in holders.items() if k == WRITE]
            assert len(writers) <= 1
            if writers:
                assert set(holders) == set(writers)
    # Releasing every transaction leaves a clean table.
    for txn in ("t1", "t2", "t3"):
        locks.discard(txn)
    assert locks.holders_of("x") == {}
    assert locks.holders_of("y") == {}


@given(ops, st.sampled_from(["t1", "t2", "t3"]))
def test_discard_releases_all_locks(operations, victim):
    store = ObjectStore()
    store.create("x", 0)
    store.create("y", 0)
    locks = LockManager(store)
    for txn, kind, uid in operations:
        locks.acquire(uid, txn, kind)
    locks.discard(victim)
    assert locks.locks_held_by(victim) == {}
