"""Tests for the one-copy serializability checker."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.serializability import (
    CommittedTransaction,
    SerializabilityChecker,
    SerializabilityViolation,
)

X = ("g", "x")
Y = ("g", "y")


def txn(aid, reads=None, writes=None):
    return CommittedTransaction(
        aid=aid, reads=dict(reads or {}), writes=dict(writes or {})
    )


def test_empty_history_serializable():
    SerializabilityChecker([]).check()


def test_serial_chain_ok():
    history = [
        txn("t1", writes={X: 1}),
        txn("t2", reads={X: 1}, writes={X: 2}),
        txn("t3", reads={X: 2}, writes={X: 3}),
    ]
    SerializabilityChecker(history).check()


def test_wr_edge_built():
    history = [txn("t1", writes={X: 1}), txn("t2", reads={X: 1})]
    graph = SerializabilityChecker(history).graph()
    assert graph.has_edge("t1", "t2")
    assert graph.edges["t1", "t2"]["kind"] == "wr"


def test_ww_edge_built():
    history = [txn("t1", writes={X: 1}), txn("t2", writes={X: 2})]
    graph = SerializabilityChecker(history).graph()
    assert graph.has_edge("t1", "t2")
    assert graph.edges["t1", "t2"]["kind"] == "ww"


def test_rw_edge_built():
    history = [txn("t1", writes={X: 1}), txn("t2", reads={X: 0})]
    graph = SerializabilityChecker(history).graph()
    # t2 read version 0; t1 installed version 1: t2 precedes t1.
    assert graph.has_edge("t2", "t1")
    assert graph.edges["t2", "t1"]["kind"] == "rw"


def test_lost_update_cycle_detected():
    """Both transactions read version 0 and installed 1 and 2: each read
    what the other overwrote -- a classic lost-update anomaly."""
    history = [
        txn("t1", reads={X: 0}, writes={X: 1}),
        txn("t2", reads={X: 0}, writes={X: 2}),
    ]
    # t2 -> t1 (rw: t2 read 0, t1 wrote 1); t1 -> t2 (ww).  Cycle.
    with pytest.raises(SerializabilityViolation):
        SerializabilityChecker(history).check()


def test_write_skew_cycle_detected():
    history = [
        txn("t1", reads={X: 0, Y: 0}, writes={X: 1}),
        txn("t2", reads={X: 0, Y: 0}, writes={Y: 1}),
    ]
    # t1 reads y@0, t2 writes y@1 -> t1 -> t2 (rw); symmetric on x: cycle.
    with pytest.raises(SerializabilityViolation):
        SerializabilityChecker(history).check()


def test_duplicate_version_installation_detected():
    history = [txn("t1", writes={X: 1}), txn("t2", writes={X: 1})]
    with pytest.raises(SerializabilityViolation):
        SerializabilityChecker(history).check()


def test_disjoint_transactions_ok():
    history = [txn("t1", writes={X: 1}), txn("t2", writes={Y: 1})]
    SerializabilityChecker(history).check()


def test_is_serializable_boolean():
    ok = [txn("t1", writes={X: 1})]
    assert SerializabilityChecker(ok).is_serializable()
    bad = [
        txn("t1", reads={X: 0}, writes={X: 1}),
        txn("t2", reads={X: 0}, writes={X: 2}),
    ]
    assert not SerializabilityChecker(bad).is_serializable()


@given(st.integers(2, 12))
def test_any_serial_chain_is_serializable(length):
    history = [
        txn(f"t{i}", reads={X: i - 1}, writes={X: i}) for i in range(1, length)
    ]
    SerializabilityChecker(history).check()


@given(st.permutations(list(range(1, 7))))
def test_serial_chain_order_independent(order):
    """The checker is insensitive to the order transactions are reported."""
    history = [txn(f"t{i}", reads={X: i - 1}, writes={X: i}) for i in order]
    SerializabilityChecker(history).check()
