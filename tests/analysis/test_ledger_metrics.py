"""Tests for the transaction ledger, metrics, and table rendering."""

import math

import pytest

from repro.analysis.ledger import LedgerViolation, TransactionLedger
from repro.analysis.metrics import LatencyStat, Metrics
from repro.analysis.tables import render_table


# -- ledger ------------------------------------------------------------------


def test_ledger_commit_then_abort_is_violation():
    ledger = TransactionLedger()
    ledger.record_commit("t1")
    with pytest.raises(LedgerViolation):
        ledger.record_abort("t1", "oops")


def test_ledger_abort_then_commit_is_violation():
    ledger = TransactionLedger()
    ledger.record_abort("t1", "early")
    with pytest.raises(LedgerViolation):
        ledger.record_commit("t1")


def test_ledger_duplicate_commit_idempotent():
    ledger = TransactionLedger()
    ledger.record_commit("t1")
    ledger.record_commit("t1")
    assert ledger.commit_count == 1


def test_ledger_effects_first_report_wins():
    ledger = TransactionLedger()
    ledger.record_effects("t1", "g", reads={"x": 0}, writes={"x": 1})
    ledger.record_effects("t1", "g", reads={"x": 99}, writes={"x": 99})
    ledger.record_commit("t1")
    merged = ledger.committed_transactions()
    assert merged[0].writes[("g", "x")] == 1


def test_ledger_merges_multi_group_effects():
    ledger = TransactionLedger()
    ledger.record_effects("t1", "g1", reads={}, writes={"x": 1})
    ledger.record_effects("t1", "g2", reads={"y": 0}, writes={})
    ledger.record_commit("t1")
    merged = ledger.committed_transactions()[0]
    assert ("g1", "x") in merged.writes
    assert ("g2", "y") in merged.reads


def test_ledger_excludes_uncommitted_effects():
    ledger = TransactionLedger()
    ledger.record_effects("t1", "g", reads={}, writes={"x": 1})
    assert ledger.committed_transactions() == []


def test_ledger_abort_reasons_counted():
    ledger = TransactionLedger()
    ledger.record_abort("t1", "no reply")
    ledger.record_abort("t2", "no reply")
    ledger.record_abort("t3", "refused")
    assert ledger.abort_reasons() == {"no reply": 2, "refused": 1}


def test_ledger_clock_stamps_commits():
    now = {"t": 17.5}
    ledger = TransactionLedger(clock=lambda: now["t"])
    ledger.record_commit("t1")
    assert ledger.committed["t1"] == 17.5


def test_ledger_rejects_negative_timestamps():
    ledger = TransactionLedger()
    with pytest.raises(ValueError, match="negative"):
        ledger.record_fault("crash", "n1", at=-1.0)
    with pytest.raises(ValueError, match="negative"):
        ledger.record_detector_event("suspect", "kv", 0, 1, at=-0.5)


def test_ledger_rejects_time_regression_per_stream():
    ledger = TransactionLedger()
    ledger.record_fault("crash", "n1", at=10.0)
    ledger.record_fault("recover", "n1", at=10.0)  # equal times are fine
    with pytest.raises(ValueError, match="before the stream"):
        ledger.record_fault("crash", "n2", at=9.0)
    ledger.record_detector_event("suspect", "kv", 0, 1, at=20.0)
    with pytest.raises(ValueError):
        ledger.record_detector_event("trust", "kv", 0, 1, at=19.0)


def test_ledger_timestamp_streams_are_independent():
    # a "late" entry on one stream must not poison the others
    ledger = TransactionLedger()
    ledger.record_fault("crash", "n1", at=100.0)
    ledger.record_detector_event("suspect", "kv", 0, 1, at=5.0)
    ledger.record_view_change_started("kv", at=1.0)
    assert ledger.faults[0].at == 100.0
    assert ledger.detector_events[0].at == 5.0


# -- metrics --------------------------------------------------------------------


def test_latency_stat_percentiles():
    stat = LatencyStat()
    for value in range(1, 101):
        stat.record(float(value))
    assert stat.count == 100
    assert stat.mean == 50.5
    assert stat.p50 == 50.0
    assert stat.p99 == 99.0
    assert stat.minimum == 1.0
    assert stat.maximum == 100.0


def test_latency_stat_empty_is_nan():
    stat = LatencyStat()
    assert math.isnan(stat.mean)
    assert math.isnan(stat.p50)


def test_metrics_message_accounting():
    metrics = Metrics()
    metrics.on_send("CallMsg", 100)
    metrics.on_send("CallMsg", 50)
    metrics.on_deliver("CallMsg")
    metrics.on_drop("CallMsg")
    assert metrics.messages_sent["CallMsg"] == 2
    assert metrics.bytes_sent["CallMsg"] == 150
    assert metrics.total_sent() == 2
    assert metrics.total_bytes(["CallMsg"]) == 150


def test_metrics_counters_and_latencies():
    metrics = Metrics()
    metrics.incr("things")
    metrics.incr("things", 4)
    metrics.observe("lat", 2.0)
    metrics.observe("lat", 4.0)
    assert metrics.counters["things"] == 5
    assert metrics.latencies["lat"].mean == 3.0


def test_metrics_snapshot_is_plain_data():
    metrics = Metrics()
    metrics.on_send("X", 10)
    snap = metrics.snapshot()
    metrics.on_send("X", 10)
    assert snap["sent"]["X"] == 1  # snapshot unaffected by later sends


# -- tables -----------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1], ["long-name", 23.5]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4
    assert "23.50" in lines[3]


def test_render_table_formats_nan_and_magnitudes():
    text = render_table(["v"], [[float("nan")], [123456.0], [0.0001]])
    assert "-" in text
    assert "1.23e+05" in text
    assert "0.0001" in text
