"""Edge-case tests for the nearest-rank percentile summary."""

import math

from repro.analysis.metrics import LatencyStat


def make(samples):
    stat = LatencyStat()
    for value in samples:
        stat.record(value)
    return stat


def test_empty_stat_is_nan_everywhere():
    stat = LatencyStat()
    assert stat.count == 0
    assert math.isnan(stat.mean)
    assert math.isnan(stat.minimum)
    assert math.isnan(stat.maximum)
    assert math.isnan(stat.percentile(50))
    assert math.isnan(stat.p99)


def test_single_sample_every_percentile_is_that_sample():
    stat = make([7.5])
    for p in (0, 1, 50, 99, 100):
        assert stat.percentile(p) == 7.5
    assert stat.mean == stat.minimum == stat.maximum == 7.5


def test_p0_is_minimum_and_p100_is_maximum():
    stat = make([30.0, 10.0, 20.0])
    assert stat.percentile(0) == 10.0
    assert stat.percentile(100) == 30.0


def test_out_of_range_p_clamps_to_extremes():
    stat = make([1.0, 2.0, 3.0])
    assert stat.percentile(-5) == 1.0
    assert stat.percentile(250) == 3.0


def test_nearest_rank_on_known_series():
    stat = make(list(range(1, 11)))  # 1..10, already distinct
    assert stat.percentile(50) == 5  # ceil(10 * 0.50) = rank 5
    assert stat.percentile(51) == 6  # ceil(10 * 0.51) = rank 6
    assert stat.percentile(99) == 10  # ceil(10 * 0.99) = rank 10
    assert stat.p50 == 5
    assert stat.p99 == 10


def test_percentile_does_not_disturb_insertion_order():
    stat = make([3.0, 1.0, 2.0])
    assert stat.percentile(50) == 2.0
    assert stat.samples == [3.0, 1.0, 2.0]  # sorted on a copy
