"""Tests for randomized nemesis rules and timeline reproducibility."""

from repro import Nemesis
from tests.conftest import build_counter_system


def test_crash_primary_rule_fires_count_times_and_recovers():
    rt, counter, _clients, driver = build_counter_system(seed=21)
    driver.submit("clients", "bump", 1)
    rt.run_for(400)
    rt.inject(Nemesis().crash_primary("counter", every=400.0, count=2,
                                      recover_after=200.0))
    rt.run_for(6000)
    assert rt.faults.count("crash") == 2
    assert rt.faults.count("recover") == 2
    assert all(node.up for node in counter.nodes())


def test_rolling_restart_touches_every_node_once_per_round():
    rt, counter, _clients, _driver = build_counter_system(seed=22)
    node_ids = [node.node_id for node in counter.nodes()]
    rt.inject(Nemesis().rolling_restart(node_ids, every=300.0, downtime=100.0))
    rt.run_for(3000)
    crashed = [e.target for e in rt.faults.timeline if e.kind == "crash"]
    assert crashed == node_ids
    assert rt.faults.count("recover") == len(node_ids)


def test_partition_storm_blocks_match_group_membership():
    rt, counter, _clients, _driver = build_counter_system(seed=23)
    node_ids = {node.node_id for node in counter.nodes()}
    rt.inject(
        Nemesis().partition_storm(
            sorted(node_ids), mean_healthy=200.0, mean_partitioned=150.0
        )
    )
    rt.run_for(4000)
    partitions = [e for e in rt.faults.timeline if e.kind == "partition"]
    assert partitions, "storm never formed a partition in 4000 time units"
    for event in partitions:
        blocks = [set(block.split(",")) for block in event.target.split(" | ")]
        assert len(blocks) == 2
        assert blocks[0] | blocks[1] == node_ids
        assert blocks[0] and blocks[1]
    rt.faults.stop()
    rt.faults.heal()
    rt.quiesce()
    rt.check_invariants(require_convergence=False)


def test_group_partition_isolates_primary_in_minority():
    rt, counter, _clients, driver = build_counter_system(seed=24, n_cohorts=5)
    driver.submit("clients", "bump", 1)
    rt.run_for(400)
    primary_node = counter.active_primary().node.node_id
    rt.inject(
        Nemesis().partition_group("counter", every=50.0, duration=400.0, count=1)
    )
    rt.run_for(200)
    partitions = [e for e in rt.faults.timeline if e.kind == "partition"]
    assert len(partitions) == 1
    minority = set(partitions[0].target.split(" | ")[0].split(","))
    assert primary_node in minority
    assert len(minority) == 2  # strict sub-majority of 5
    rt.run_for(4000)
    assert rt.faults.count("heal") == 1
    # The majority side must have elected a new primary meanwhile.
    assert len(rt.ledger.view_changes_for("counter")) >= 1


def test_same_seed_nemesis_replays_byte_identical_timeline():
    """Acceptance criterion: a same-seed fault plan replays a byte-identical
    injected-event timeline."""

    def run_once():
        rt, counter, _clients, driver = build_counter_system(seed=77)
        for _ in range(3):
            driver.submit("clients", "bump", 1)
        node_ids = [node.node_id for node in counter.nodes()]
        rt.inject(
            Nemesis()
            .crash_churn(node_ids, mttf=600.0, mttr=200.0, max_down=1)
            .partition_storm(node_ids, mean_healthy=700.0, mean_partitioned=300.0)
            .crash_primary("counter", every=900.0, count=2, recover_after=300.0)
        )
        rt.run_for(8000)
        return rt.faults.timeline_text()

    first, second = run_once(), run_once()
    assert first == second
    assert first.count("\n") >= 3  # the storm actually injected faults


def test_different_seed_changes_the_timeline():
    def run_once(seed):
        rt, counter, _clients, _driver = build_counter_system(seed=seed)
        node_ids = [node.node_id for node in counter.nodes()]
        rt.inject(Nemesis().crash_churn(node_ids, mttf=500.0, mttr=150.0))
        rt.run_for(8000)
        return rt.faults.timeline_text()

    assert run_once(31) != run_once(32)


def test_stop_halts_rules_but_keeps_timeline():
    rt, counter, _clients, _driver = build_counter_system(seed=25)
    rt.inject(Nemesis().crash_primary("counter", every=100.0, count=50,
                                      recover_after=10.0))
    rt.run_for(350)
    injected = rt.faults.count("crash")
    assert injected >= 2
    rt.faults.stop()
    rt.run_for(2000)
    assert rt.faults.count("crash") == injected  # no further injections


def test_lossy_bursts_alternate_degrade_and_restore():
    rt, _counter, _clients, _driver = build_counter_system(seed=29)
    clean_link = rt.network.link
    rt.inject(Nemesis().lossy_bursts(mean_healthy=300.0, mean_lossy=150.0,
                                     loss=0.3, duplicate=0.1))
    rt.run_for(5000)
    bursts = rt.faults.count("lossy")
    assert bursts >= 2
    # Every burst that ended was restored; at most one can still be open.
    assert rt.faults.count("restore_links") >= bursts - 1
    degraded = [e for e in rt.faults.timeline if e.kind == "lossy"]
    assert all("loss=0.3" in e.target for e in degraded)
    rt.faults.stop()
    rt.faults.restore_links()
    assert rt.network.link == clean_link
