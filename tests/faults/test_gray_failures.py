"""Gray failures: one-way cuts, slow nodes, disk faults, and heal_all."""

import pytest

from repro import Nemesis
from repro.faults.nemesis import (
    AsymmetricPartitionRule,
    DiskFaultRule,
    SlowNodeRule,
)
from tests.conftest import build_counter_system


def _node_ids(group):
    return [node.node_id for node in group.nodes()]


def _addr(rt, node_id):
    return rt.nodes[node_id].actors[0].address


# -- controller primitives ----------------------------------------------------


def test_fail_link_oneway_blocks_only_one_direction():
    rt, counter, _clients, _driver = build_counter_system(seed=31)
    a, b = _node_ids(counter)[:2]
    rt.faults.fail_link_oneway(a, b)
    addr_a, addr_b = _addr(rt, a), _addr(rt, b)
    assert not rt.network.can_communicate(addr_a, addr_b)
    assert rt.network.can_communicate(addr_b, addr_a)
    rt.faults.repair_link_oneway(a, b)
    assert rt.network.can_communicate(addr_a, addr_b)


def test_isolate_oneway_outbound_silences_the_victim():
    rt, counter, _clients, _driver = build_counter_system(seed=32)
    ids = _node_ids(counter)
    victim = ids[0]
    rt.faults.isolate_oneway(victim, "outbound")
    for other in ids[1:]:
        assert not rt.network.can_communicate(_addr(rt, victim), _addr(rt, other))
        assert rt.network.can_communicate(_addr(rt, other), _addr(rt, victim))


def test_isolate_oneway_inbound_deafens_the_victim():
    rt, counter, _clients, _driver = build_counter_system(seed=33)
    ids = _node_ids(counter)
    victim = ids[0]
    rt.faults.isolate_oneway(victim, "inbound")
    for other in ids[1:]:
        assert rt.network.can_communicate(_addr(rt, victim), _addr(rt, other))
        assert not rt.network.can_communicate(_addr(rt, other), _addr(rt, victim))


def test_isolate_oneway_rejects_unknown_direction():
    rt, counter, _clients, _driver = build_counter_system(seed=34)
    with pytest.raises(ValueError):
        rt.faults.isolate_oneway(_node_ids(counter)[0], "sideways")


def test_slow_node_overrides_links_and_restore_undoes_them():
    rt, counter, _clients, _driver = build_counter_system(seed=35)
    victim = _node_ids(counter)[0]
    assert not rt.network.link_overrides()
    rt.faults.slow_node(victim, factor=8.0)
    overrides = rt.network.link_overrides()
    assert overrides
    slowed = next(iter(overrides.values()))
    assert slowed.base_delay == rt.network.link.base_delay * 8.0
    rt.faults.restore_node(victim)
    assert not rt.network.link_overrides()
    # Restoring an already-restored node is a silent no-op.
    rt.faults.restore_node(victim)


def test_slow_node_factor_below_one_rejected():
    rt, counter, _clients, _driver = build_counter_system(seed=36)
    with pytest.raises(ValueError):
        rt.faults.slow_node(_node_ids(counter)[0], factor=0.5)


def test_disk_primitives_target_every_store_on_the_node():
    rt, counter, _clients, _driver = build_counter_system(seed=37)
    victim = _node_ids(counter)[0]
    rt.faults.disk_fail(victim)
    stores = rt.nodes[victim].stable_stores
    assert stores and all(store.fail_writes for store in stores)
    rt.faults.disk_slow(victim, factor=4.0)
    assert all(store.slow_factor == 4.0 for store in stores)
    rt.faults.disk_heal(victim)
    assert all(store.faults_active() == [] for store in stores)


def test_disk_fault_on_storeless_node_is_an_error():
    rt, _counter, _clients, _driver = build_counter_system(seed=38)
    node_id = next(
        node_id for node_id, node in rt.nodes.items()
        if not node.stable_stores
    )
    with pytest.raises(ValueError):
        rt.faults.disk_fail(node_id)


def test_heal_all_restores_every_disruption():
    """The full contract heal() deliberately does not provide."""
    rt, counter, _clients, _driver = build_counter_system(seed=39)
    ids = _node_ids(counter)
    rt.run_for(200)
    rt.faults.partition({ids[0]}, set(ids[1:]))
    rt.faults.fail_link(ids[0], ids[1])
    rt.faults.fail_link_oneway(ids[1], ids[2])
    rt.faults.slow_node(ids[2], factor=8.0)
    rt.faults.lossy(0.5)
    rt.faults.disk_fail(ids[0])
    rt.faults.crash(ids[1])
    assert rt.network.disrupted(rt.faults._default_link)

    rt.faults.heal_all()

    assert rt.network.partition_blocks() is None
    assert rt.network.failed_links() == []
    assert not rt.network.link_overrides()
    assert rt.network.link == rt.faults._default_link
    assert not rt.network.disrupted(rt.faults._default_link)
    assert all(node.up for node in counter.nodes())
    for node in counter.nodes():
        for store in node.stable_stores:
            assert store.faults_active() == []
    kinds = [event.kind for event in rt.faults.timeline]
    assert kinds[-1] == "heal_all"
    assert "recover" in kinds  # the crashed node came back through recover()
    # The healed group must re-form and keep working.
    rt.run_for(2000)
    assert counter.active_primary() is not None


# -- nemesis rules ------------------------------------------------------------


def test_disk_fault_rule_injects_and_heals():
    rt, counter, _clients, _driver = build_counter_system(seed=41)
    rt.inject(
        Nemesis("disks").disk_faults(
            _node_ids(counter), mean_healthy=150.0, mean_faulty=80.0,
            mode="fail",
        )
    )
    rt.run_for(2000)
    assert rt.faults.count("disk_fail") >= 1
    assert rt.faults.count("disk_heal") >= 1


def test_disk_fault_rule_torn_mode_recovers_the_victim():
    rt, counter, _clients, driver = build_counter_system(seed=42)
    driver.call("clients", "bump", 1)
    rt.run_for(300)
    rt.inject(
        Nemesis("torn").disk_faults(
            _node_ids(counter), mean_healthy=100.0, mean_faulty=200.0,
            mode="torn",
        )
    )
    rt.run_for(4000)
    assert rt.faults.count("disk_torn") >= 1
    # Torn faults crash the victim on its next write; the rule must bring
    # every such victim back so the schedule stays healable.
    rt.faults.stop()
    rt.faults.heal_all()
    rt.run_for(2000)
    assert all(node.up for node in counter.nodes())


def test_asymmetric_partition_rule_cuts_and_repairs():
    rt, counter, _clients, _driver = build_counter_system(seed=43)
    rt.inject(
        Nemesis("asym").asymmetric_partition(
            _node_ids(counter), mean_healthy=150.0, mean_partitioned=100.0
        )
    )
    rt.run_for(2000)
    assert rt.faults.count("isolate_oneway") >= 1
    assert rt.faults.count("repair_link_oneway") >= 1
    rt.faults.stop()
    rt.faults.heal_all()
    assert rt.network.failed_links() == []


def test_slow_node_rule_slows_and_restores():
    rt, counter, _clients, _driver = build_counter_system(seed=44)
    rt.inject(
        Nemesis("slow").slow_node(
            _node_ids(counter), mean_healthy=150.0, mean_slow=100.0,
            link_factor=4.0, disk_factor=4.0,
        )
    )
    rt.run_for(2000)
    assert rt.faults.count("slow_node") >= 1
    assert rt.faults.count("restore_node") >= 1
    assert rt.faults.count("disk_slow") >= 1
    assert rt.faults.count("disk_heal") >= 1


def test_gray_failure_rules_replay_byte_identical_timelines():
    def run_once():
        rt, counter, _clients, _driver = build_counter_system(seed=45)
        ids = _node_ids(counter)
        rt.inject(
            Nemesis("gray")
            .disk_faults(ids, mean_healthy=200.0, mean_faulty=100.0)
            .asymmetric_partition(ids, mean_healthy=250.0, mean_partitioned=120.0)
            .slow_node(ids, mean_healthy=300.0, mean_slow=150.0)
        )
        rt.run_for(3000)
        return rt.faults.timeline_text()

    assert run_once() == run_once()


def test_rule_constructors_validate_arguments():
    with pytest.raises(ValueError):
        DiskFaultRule(["n0"], 100.0, 50.0, mode="melt")
    with pytest.raises(ValueError):
        SlowNodeRule(["n0"], 100.0, 50.0, link_factor=0.5)
    with pytest.raises(ValueError):
        AsymmetricPartitionRule([], 100.0, 50.0)


def test_crash_churn_protect_group_never_strands_the_group():
    """With MINIMAL storage, crashing a node while the previous victim is
    still catching up can strand the group unrecoverably; protect_group
    must hold such crashes back."""
    rt, counter, _clients, driver = build_counter_system(seed=46)
    driver.call("clients", "bump", 1)
    rt.run_for(300)
    rt.inject(
        Nemesis("churn").crash_churn(
            _node_ids(counter), mttf=250.0, mttr=120.0, max_down=2,
            protect_group="counter",
        )
    )
    group = rt.groups["counter"]
    end = rt.sim.now + 6000
    while rt.sim.now < end:
        rt.run_for(50)
        up_to_date = sum(
            1 for cohort in group.cohorts.values()
            if cohort.node.up and cohort.up_to_date
        )
        assert up_to_date >= group.majority_size(), (
            f"churn stranded the group at t={rt.sim.now}"
        )
    rt.faults.stop()
    rt.faults.heal_all()
    rt.run_for(2000)
    assert counter.active_primary() is not None
