"""Tests for the declarative fault plan API and its executor."""

import pytest

from repro import FaultPlan, Runtime
from repro.faults.plan import Crash, Heal, Partition, Recover
from tests.conftest import build_counter_system


# -- plan construction (pure data, no runtime) ------------------------------


def test_plan_orders_ops_by_time_then_insertion():
    plan = FaultPlan()
    plan.at(500).recover("n0")
    plan.at(100).crash("n0")
    plan.at(100).heal()
    ops = plan.ops()
    assert [at for at, _op in ops] == [100.0, 100.0, 500.0]
    assert isinstance(ops[0][1], Crash)
    assert isinstance(ops[1][1], Heal)
    assert isinstance(ops[2][1], Recover)


def test_plan_cursor_chains_at_one_instant():
    plan = FaultPlan()
    plan.at(50).crash("n0").crash("n1").partition({"n0"}, {"n1", "n2"})
    assert len(plan) == 3
    assert all(at == 50.0 for at, _op in plan.ops())


def test_plan_merge_with_iadd():
    first = FaultPlan()
    first.at(10).crash("n0")
    second = FaultPlan()
    second.at(5).heal()
    first += second
    assert [type(op) for _at, op in first.ops()] == [Heal, Crash]


def test_plan_partition_normalizes_blocks():
    plan = FaultPlan()
    plan.at(0).partition({"b", "a"}, ["d", "c"])
    (_at, op), = plan.ops()
    assert op == Partition(blocks=(("a", "b"), ("c", "d")))


def test_plan_rejects_bad_input():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.at(-1).crash("n0")
    with pytest.raises(ValueError):
        plan.at(0).partition()
    with pytest.raises(ValueError):
        plan.at(0).lossy(rate=1.5)
    with pytest.raises(ValueError):
        plan.at(0).flap_link("n0", "n1", period=0.0, duration=10.0)


def test_inject_rejects_non_plan():
    rt = Runtime(seed=1)
    with pytest.raises(TypeError):
        rt.inject("crash everything")


# -- executor against a live runtime ----------------------------------------


def test_crash_recover_round_trip_restores_convergence():
    """The headline acceptance test: a planned crash of the primary plus a
    later recovery leaves a group that converges and passes the full
    invariant battery."""
    rt, counter, _clients, driver = build_counter_system(seed=42)
    first = driver.submit("clients", "bump", 1)
    rt.run_for(400)
    assert first.result()[0] == "committed"

    victim = counter.active_primary().node.node_id
    plan = FaultPlan()
    plan.at(0.0).crash(victim)
    plan.at(600.0).recover(victim)
    rt.inject(plan)
    rt.run_for(3000)

    second = driver.submit("clients", "bump", 1)
    rt.run_for(3000)
    assert second.result()[0] == "committed"
    rt.quiesce()
    rt.check_invariants()  # includes replica convergence
    assert counter.read_object("count") == 2
    assert [event.kind for event in rt.faults.timeline[:2]] == ["crash", "recover"]


def test_crash_primary_op_resolves_target_at_fire_time():
    rt, counter, _clients, driver = build_counter_system(seed=7)
    driver.submit("clients", "bump", 1)
    rt.run_for(400)
    before = counter.active_primary().node.node_id
    plan = FaultPlan()
    plan.at(10.0).crash_primary("counter", recover_after=500.0)
    rt.inject(plan)
    rt.run_for(3000)
    assert rt.faults.count("crash") == 1
    assert rt.faults.timeline[0].target == before
    assert rt.faults.count("recover") == 1
    assert rt.nodes[before].up


def test_partition_window_blocks_and_heals():
    rt, counter, _clients, _driver = build_counter_system(seed=3)
    addresses = [address for _mid, address in rt.location.lookup("counter")]
    lone, rest = addresses[0], addresses[1:]
    node_ids = [rt.network.node_of(a).node_id for a in addresses]
    plan = FaultPlan()
    plan.at(0.0).partition({node_ids[0]}, set(node_ids[1:]))
    plan.at(200.0).heal()
    rt.inject(plan)
    rt.run_for(100)
    assert not rt.network.can_communicate(lone, rest[0])
    assert rt.network.can_communicate(rest[0], rest[1])
    rt.run_for(200)
    assert rt.network.can_communicate(lone, rest[0])
    assert rt.faults.count("partition") == 1
    assert rt.faults.count("heal") == 1


def test_flap_link_always_ends_repaired():
    rt, counter, _clients, _driver = build_counter_system(seed=5)
    addresses = [address for _mid, address in rt.location.lookup("counter")]
    a, b = (rt.network.node_of(addr).node_id for addr in addresses[:2])
    plan = FaultPlan()
    # 130 is not a whole number of 50-unit periods: the trailing half-flap
    # must still repair the link before the flapper exits.
    plan.at(0.0).flap_link(a, b, period=50.0, duration=130.0)
    rt.inject(plan)
    rt.run_for(500)
    fails = rt.faults.count("fail_link")
    repairs = rt.faults.count("repair_link")
    assert fails == repairs > 0
    assert rt.network.can_communicate(addresses[0], addresses[1])


def test_lossy_window_restores_default_link():
    rt, _counter, _clients, _driver = build_counter_system(seed=9)
    default = rt.network.link
    plan = FaultPlan()
    plan.at(0.0).lossy(rate=0.25, duration=100.0)
    rt.inject(plan)
    rt.run_for(50)
    assert rt.network.link.loss_probability == 0.25
    assert rt.network.link.base_delay == default.base_delay
    rt.run_for(100)
    assert rt.network.link == default
    assert rt.faults.count("lossy") == 1
    assert rt.faults.count("restore_links") == 1


# -- injection bookkeeping ---------------------------------------------------


def test_injections_are_recorded_in_metrics_and_ledger():
    rt, counter, _clients, _driver = build_counter_system(seed=11)
    victim = counter.cohort(0).node.node_id
    rt.faults.crash(victim)
    assert rt.metrics.counters["faults_injected:crash"] == 1
    assert len(rt.ledger.faults) == 1
    event = rt.ledger.faults[0]
    assert (event.kind, event.target) == ("crash", victim)


def test_crash_is_idempotent_and_reports_it():
    rt, counter, _clients, _driver = build_counter_system(seed=11)
    victim = counter.cohort(0).node.node_id
    assert rt.faults.crash(victim) is True
    assert rt.faults.crash(victim) is False  # already down: not re-recorded
    assert rt.faults.count("crash") == 1
    assert rt.faults.recover(victim) is True
    assert rt.faults.recover(victim) is False


def test_unknown_fault_target_raises_clear_error():
    rt = Runtime(seed=1)
    with pytest.raises(KeyError, match="unknown node"):
        rt.faults.crash("no-such-node")
