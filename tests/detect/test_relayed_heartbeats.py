"""Relayed (gossip) heartbeat evidence and the failure detector.

The repro.scale gossip plane forwards ``(mid, heard_at)`` liveness
evidence through intermediaries.  These tests pin the contract of
:meth:`repro.detect.FailureDetector.heard_relayed`:

- relayed evidence must NEVER feed the RTT estimator -- a
  Jacobson/Karels sample inflated by unknown relay hops would corrupt
  every RTO-derived timeout;
- ``last_heard`` advances monotonically in *origin* time (stale or
  duplicate evidence is a no-op);
- the inter-arrival EWMA is fed origin-time deltas, so the accrual
  baseline tracks the cadence of fresh evidence rather than the rare
  direct beats (~n/fanout periods apart under gossip);
- suspicion clears on fresh evidence, exactly as it does for a direct
  beat.

The end-to-end case runs a gossip-armed group on a LOSSY link and
crashes the primary: detection must stay prompt (bounded failover)
even though most liveness evidence arrives second-hand.
"""

from repro.config import ProtocolConfig, ScaleConfig
from repro.detect import FailureDetector


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _detector(config=None, transitions=None):
    config = config or ProtocolConfig()
    clock = _Clock()
    on_transition = None
    if transitions is not None:
        on_transition = lambda mid, s: transitions.append((mid, s))  # noqa: E731
    return (
        FailureDetector(config, peers=[1, 2], clock=clock,
                        on_transition=on_transition),
        clock,
    )


# -- the RTT invariant (the reason heard_relayed exists) --------------------


def test_relayed_evidence_never_feeds_rtt():
    """Gossip-forwarded sent_at must not become a Jacobson/Karels sample."""
    detector, clock = _detector()
    # A cascade of relayed evidence, each hops behind the origin time.
    for beat in range(1, 20):
        clock.now = beat * 10.0
        detector.heard_relayed(1, clock.now - 25.0)
    assert detector.rto(1) is None
    assert detector.group_rto() is None


def test_direct_beats_still_feed_rtt_alongside_relays():
    detector, clock = _detector()
    clock.now = 10.0
    detector.heard(1, sent_at=8.0)  # exact one-way delay: RTT sample 4.0
    clock.now = 20.0
    detector.heard_relayed(1, 18.0)
    clock.now = 30.0
    detector.heard_relayed(1, 28.0)
    # The single direct sample survives un-polluted: srtt stays 4.0.
    assert detector.rto(1) == 4.0 + 4.0 * 2.0


# -- origin-time monotonicity ----------------------------------------------


def test_stale_relayed_evidence_is_a_noop():
    detector, clock = _detector()
    clock.now = 50.0
    detector.heard(1)
    assert detector.last_heard(1) == 50.0
    # Evidence older than (or equal to) what we already know: ignored.
    detector.heard_relayed(1, 40.0)
    detector.heard_relayed(1, 50.0)
    assert detector.last_heard(1) == 50.0
    assert detector.expected_interval(1) == ProtocolConfig().im_alive_interval


def test_relayed_evidence_advances_last_heard_in_origin_time():
    detector, clock = _detector()
    clock.now = 100.0
    detector.heard_relayed(1, 60.0)
    # Origin time, not arrival time: the peer was alive at 60, and the
    # 40 units of relay lag must count as elapsed silence.
    assert detector.last_heard(1) == 60.0


def test_relayed_evidence_unknown_peer_is_ignored():
    detector, clock = _detector()
    clock.now = 10.0
    detector.heard_relayed(99, 5.0)  # not a peer; must not raise
    assert detector.last_heard(99) == 0.0


# -- the interval EWMA learns the evidence cadence -------------------------


def test_interval_ewma_learns_origin_deltas_not_arrival_spacing():
    """Under gossip, direct beats are ~n/fanout periods apart; feeding
    arrival spacing would learn a baseline so lazy the primary's death
    would go unsuspected for an eternity.  Origin-time deltas keep the
    expected interval at the true heartbeat period."""
    config = ProtocolConfig()
    period = config.im_alive_interval
    detector, clock = _detector(config=config)
    clock.now = period
    detector.heard(1)
    # Fresh relayed evidence every period, arriving one period late.
    for beat in range(2, 40):
        clock.now = beat * period + 3.0
        detector.heard_relayed(1, beat * period)
    # The learned baseline is the evidence cadence (one period), so the
    # accrual threshold stays at its floor -- not 30x lazier.
    assert detector.expected_interval(1) <= 2.0 * period
    # And suspicion fires promptly once evidence stops.
    clock.now += config.suspect_multiplier * 2.0 * period + 1.0
    assert detector.is_suspect(1)


def test_relayed_evidence_clears_suspicion():
    transitions = []
    config = ProtocolConfig()
    detector, clock = _detector(config=config, transitions=transitions)
    clock.now = 10.0
    detector.heard(1)
    clock.now = 10.0 + 100.0 * config.im_alive_interval
    assert detector.is_suspect(1)
    assert transitions == [(1, True)]
    detector.heard_relayed(1, clock.now - 2.0)
    assert not detector.is_suspect(1)
    assert transitions == [(1, True), (1, False)]


def test_relayed_then_direct_interval_continuity():
    """A direct beat after a run of relayed evidence measures its interval
    from the relayed last_heard, so the EWMA never sees the huge gap back
    to the previous *direct* beat."""
    config = ProtocolConfig()
    period = config.im_alive_interval
    detector, clock = _detector(config=config)
    clock.now = period
    detector.heard(1)
    for beat in range(2, 10):
        clock.now = beat * period
        detector.heard_relayed(1, clock.now - 1.0)
    clock.now = 10.0 * period
    detector.heard(1)
    # Interval samples were all ~one period; nothing near the 9-period
    # direct-to-direct gap leaked in.
    assert detector.expected_interval(1) <= 2.0 * period


# -- end to end: gossip liveness on a lossy network ------------------------


def test_gossip_detection_stays_prompt_on_lossy_network():
    """Gossip-armed group, LOSSY links, primary crash: the backups learn
    of the death from (mostly) relayed evidence and must still form a
    new view promptly.  This is the end-to-end guard that relay hops
    neither corrupt RTT-derived timeouts nor lazify the accrual
    baseline."""
    from repro import LOSSY
    from repro.config import ProtocolConfig
    from repro.harness.common import build_kv_system

    config = ProtocolConfig(scale=ScaleConfig(gossip=True))
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=2188, n_cohorts=9, config=config, link=LOSSY
    )
    interval = kv.config.im_alive_interval
    rt.run_for(30.0 * interval)
    assert kv.active_primary() is not None
    kv.crash_primary()
    crashed_at = rt.sim.now
    deadline = crashed_at + 200.0 * interval
    while kv.active_primary() is None and rt.sim.now < deadline:
        rt.run_for(interval)
    assert kv.active_primary() is not None, "no view formed after crash"
    failover = rt.sim.now - crashed_at
    # Bounded: gossip trades some detection latency for load, but a lazy
    # EWMA would push this into the thousands.
    assert failover <= 60.0 * interval, f"failover took {failover}"
    rt.quiesce()
    rt.check_invariants(require_convergence=False)
