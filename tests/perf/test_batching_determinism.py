"""Cross-config determinism: batching must not change what a run computes.

``BatchConfig`` only changes how the communication buffer *transmits*
(coalesced flush ticks, cumulative-ack coalescing, pipelined windows), so
a batched and an unbatched run of the same idempotent retried workload
must end in byte-identical replicated state -- on a clean schedule, under
loss, and through a mid-stream view change.  These are the tier-1
counterparts of the E18 experiment and CI's ``repro.perf.batchgate``.
"""

import pytest

from repro.harness.experiments_scale import _batching_run
from repro.perf.report import state_digest
from repro.workloads.loadgen import run_retry_loop

TXNS = 60
CONCURRENCY = 8


def _cell(condition, batch, seed=181):
    metrics, digest = _batching_run(seed, condition, batch, TXNS, CONCURRENCY)
    assert metrics["committed"] == TXNS, (
        f"{condition}/{batch}: only {metrics['committed']}/{TXNS} committed"
    )
    return metrics, digest


@pytest.mark.parametrize("batch", [(1, 1), (8, 2), (64, 4), (256, 8)])
def test_batched_state_matches_unbatched_clean(batch):
    _, unbatched = _cell("clean", None)
    metrics, batched = _cell("clean", batch)
    assert batched == unbatched


@pytest.mark.parametrize("batch", [(8, 1), (64, 4)])
def test_batched_state_matches_unbatched_lossy(batch):
    _, unbatched = _cell("lossy", None)
    _, batched = _cell("lossy", batch)
    assert batched == unbatched


@pytest.mark.parametrize("batch", [(8, 1), (64, 4)])
def test_batched_state_matches_unbatched_through_view_change(batch):
    unbatched_metrics, unbatched = _cell("viewchange", None)
    batched_metrics, batched = _cell("viewchange", batch)
    assert unbatched_metrics["view_changes"] >= 1
    assert batched_metrics["view_changes"] >= 1
    assert batched == unbatched


def test_batched_uses_fewer_messages_clean():
    unbatched_metrics, _ = _cell("clean", None)
    batched_metrics, _ = _cell("clean", (64, 4))
    assert batched_metrics["messages"] < unbatched_metrics["messages"]


def test_same_seed_same_state_digest_batched():
    _, first = _cell("clean", (64, 4))
    _, second = _cell("clean", (64, 4))
    assert first == second


def test_retry_loop_commits_each_job_once():
    # The determinism argument leans on run_retry_loop counting each job
    # exactly once in `committed`; pin that accounting down directly.
    from repro.harness.common import build_kv_system

    rt, _kv, _clients, driver, spec = build_kv_system(seed=7, n_cohorts=3, n_keys=10)
    jobs = [("write", ("kv", spec.key(index), index)) for index in range(10)]
    stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=4)
    rt.run_for(5_000)
    assert stats.committed == 10
    assert stats.aborted == 0


def test_state_digest_ignores_schedule_but_not_values():
    from repro.harness.common import build_kv_system

    def run(value_offset):
        rt, _kv, _clients, driver, spec = build_kv_system(
            seed=7, n_cohorts=3, n_keys=6
        )
        jobs = [
            ("write", ("kv", spec.key(index), index + value_offset))
            for index in range(6)
        ]
        stats = run_retry_loop(rt, driver, "clients", jobs, concurrency=3)
        rt.run_for(5_000)
        assert stats.committed == 6
        return state_digest(rt)

    assert run(0) == run(0)
    assert run(0) != run(100)
