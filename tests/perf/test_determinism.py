"""Determinism: optimized and pre-optimization event orderings must agree.

The kernel optimizations (tuple heap entries, lazy cancel + compaction)
must not change what a run computes.  Compaction off (``compact_threshold=0``)
is exactly the pre-optimization lazy-cancel behaviour, so comparing ledgers
across thresholds on the same seed pins the optimization down as
order-preserving; running twice at the same threshold pins seeding down.
"""

from repro.harness.common import build_kv_system, run_kv_batch
from repro.perf.report import ledger_digest
from repro.sim.kernel import Simulator


def _kv_run(seed=77, compact_threshold=None):
    rt, _kv, _clients, driver, spec = build_kv_system(seed=seed, n_cohorts=3)
    if compact_threshold is not None:
        rt.sim.compact_threshold = compact_threshold
    run_kv_batch(rt, driver, spec, 80, read_fraction=0.5, concurrency=2)
    rt.quiesce()
    return rt


def test_same_seed_same_ledger():
    assert ledger_digest(_kv_run()) == ledger_digest(_kv_run())


def test_different_seed_different_ledger():
    assert ledger_digest(_kv_run(seed=77)) != ledger_digest(_kv_run(seed=78))


def test_compaction_does_not_change_event_ordering():
    # compact_threshold=1 compacts as aggressively as possible; 0 never
    # compacts (the pre-optimization ordering).  Same seed, same ledger.
    eager = _kv_run(compact_threshold=1)
    lazy = _kv_run(compact_threshold=0)
    assert eager.sim.heap_compactions > 0
    assert lazy.sim.heap_compactions == 0
    assert ledger_digest(eager) == ledger_digest(lazy)
    assert eager.sim.events_processed == lazy.sim.events_processed


def test_kernel_fire_order_identical_across_compaction_settings():
    def scripted(threshold):
        sim = Simulator(seed=5, compact_threshold=threshold)
        fired = []
        rng = sim.rng.fork("script")
        pending = []
        for index in range(300):
            pending.append(
                sim.schedule(rng.uniform(0.0, 50.0), fired.append, index)
            )
            if pending and rng.random() < 0.4:
                victim = pending.pop(rng.randint(0, len(pending) - 1))
                victim.cancel()
        sim.run()
        return fired

    assert scripted(0) == scripted(1) == scripted(8)
