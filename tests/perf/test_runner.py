"""End-to-end checks of the perf runner: scenario capture + CLI gate."""

import json

from repro.perf.report import write_bench_json
from repro.perf.runner import main
from repro.perf.scenarios import SCENARIOS, run_scenario


def _micro_scenario():
    return next(s for s in SCENARIOS if s.name == "micro_call_overhead")


def test_run_scenario_produces_populated_report():
    report = run_scenario(_micro_scenario(), quick=True)
    assert report.scenario == "micro_call_overhead"
    assert report.events > 0
    assert report.events_per_sec > 0
    assert report.sim_seconds > 0
    assert report.timers_created >= report.events
    assert report.messages_delivered > 0
    assert report.peak_heap_bytes > 0
    assert len(report.ledger_digest) == 64
    assert report.call_p50 is not None and report.call_p99 is not None
    assert report.extra == {"quick": True}


def test_cli_writes_valid_bench_json_and_gates(tmp_path):
    out = tmp_path / "BENCH.json"
    argv = ["--quick", "--scenario", "micro_call_overhead", "--out", str(out)]
    assert main(argv) == 0
    document = json.loads(out.read_text())
    assert document["schema_version"] == 1
    assert "micro_call_overhead" in document["scenarios"]

    # Gate against itself: zero regression, must pass.
    baseline = tmp_path / "baseline.json"
    baseline.write_text(out.read_text())
    assert main(argv + ["--baseline", str(baseline)]) == 0

    # Inflate the baseline far past reality: the gate must fail.
    inflated = json.loads(out.read_text())
    for data in inflated["scenarios"].values():
        data["events_per_sec"] *= 1000.0
    baseline.write_text(json.dumps(inflated))
    assert main(argv + ["--baseline", str(baseline)]) == 1


def test_cli_update_baseline_writes_both_files(tmp_path):
    out = tmp_path / "BENCH.json"
    baseline = tmp_path / "baseline.json"
    argv = [
        "--quick", "--scenario", "micro_call_overhead",
        "--out", str(out), "--baseline", str(baseline), "--update-baseline",
    ]
    assert main(argv) == 0
    assert json.loads(out.read_text()) == json.loads(baseline.read_text())


def test_cli_rejects_unreadable_baseline(tmp_path):
    out = tmp_path / "BENCH.json"
    bogus = tmp_path / "nope.json"
    write_bench_json(out, [], mode="quick")  # exercise empty-doc path too
    argv = [
        "--quick", "--scenario", "micro_call_overhead",
        "--out", str(out), "--baseline", str(bogus),
    ]
    assert main(argv) == 2
