"""BENCH.json schema round-trip and baseline comparison semantics."""

import json

import pytest

from repro.perf.report import (
    SCHEMA_VERSION,
    PerfReport,
    compare_to_baseline,
    load_bench_json,
    write_bench_json,
)


def _report(scenario="micro", events_per_sec=50_000.0, **overrides):
    data = dict(
        scenario=scenario,
        seed=4242,
        wall_seconds=0.5,
        sim_seconds=1000.0,
        events=25_000,
        events_per_sec=events_per_sec,
        sim_seconds_per_wall_second=2000.0,
        timers_created=30_000,
        timers_cancelled=4_000,
        heap_compactions=1,
        peak_heap_size=64,
        messages_sent=9_000,
        messages_delivered=8_500,
        messages_dropped=500,
        call_p50=2.2,
        call_p99=9.8,
        peak_heap_bytes=1_500_000,
        ledger_digest="ab" * 32,
        extra={"quick": True},
    )
    data.update(overrides)
    return PerfReport(**data)


def test_report_dict_round_trip():
    report = _report()
    assert PerfReport.from_dict(report.to_dict()) == report


def test_bench_json_round_trip(tmp_path):
    path = tmp_path / "BENCH.json"
    reports = [_report("micro"), _report("soak", events_per_sec=70_000.0)]
    write_bench_json(path, reports, mode="quick")

    document = json.loads(path.read_text())
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["mode"] == "quick"
    assert set(document["scenarios"]) == {"micro", "soak"}

    loaded = load_bench_json(path)
    assert loaded["micro"] == reports[0]
    assert loaded["soak"] == reports[1]


def test_unknown_schema_version_rejected(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps({"schema_version": 999, "scenarios": {}}))
    with pytest.raises(ValueError, match="schema_version"):
        load_bench_json(path)


def test_missing_scenarios_rejected(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
    with pytest.raises(ValueError, match="scenarios"):
        load_bench_json(path)


def test_from_dict_ignores_unknown_future_fields():
    data = _report().to_dict()
    data["added_in_schema_v2"] = "whatever"
    assert PerfReport.from_dict(data) == _report()


def test_compare_passes_within_allowance():
    baseline = {"micro": _report(events_per_sec=50_000.0)}
    current = {"micro": _report(events_per_sec=41_000.0)}
    assert compare_to_baseline(current, baseline, max_regression=0.20) == []


def test_compare_fails_past_allowance():
    baseline = {"micro": _report(events_per_sec=50_000.0)}
    current = {"micro": _report(events_per_sec=39_000.0)}
    failures = compare_to_baseline(current, baseline, max_regression=0.20)
    assert len(failures) == 1
    assert "micro" in failures[0]


def test_compare_flags_scenarios_missing_from_either_side():
    baseline = {"micro": _report(), "soak": _report("soak")}
    current = {"micro": _report(), "extra": _report("extra")}
    failures = compare_to_baseline(current, baseline)
    assert any("soak" in failure for failure in failures)
    assert any("extra" in failure for failure in failures)


def test_improvement_never_fails_the_gate():
    baseline = {"micro": _report(events_per_sec=50_000.0)}
    current = {"micro": _report(events_per_sec=500_000.0)}
    assert compare_to_baseline(current, baseline) == []
