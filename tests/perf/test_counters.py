"""Counter correctness for the instrumented kernel and message plane."""

import dataclasses

from repro.net.link import LinkModel
from repro.net.messages import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.node import Actor, Node


def test_timer_counters_on_scripted_scenario():
    sim = Simulator()
    timers = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    timers[1].cancel()
    timers[3].cancel()
    sim.run()
    assert sim.timers_created == 5
    assert sim.timers_cancelled == 2
    assert sim.events_processed == 3


def test_fired_timers_do_not_count_as_cancelled():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.run()
    assert not timer.active
    timer.cancel()  # cancelling after the fact stays a no-op
    assert sim.timers_cancelled == 0
    assert sim.events_processed == 1


def test_double_cancel_counts_once():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert sim.timers_cancelled == 1


def test_peak_heap_size_tracks_high_water_mark():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.peak_heap_size == 7
    sim.run()
    assert sim.peak_heap_size == 7  # draining does not lower the mark


def test_compaction_triggers_and_preserves_order():
    sim = Simulator(compact_threshold=4)
    fired = []
    keep = [sim.schedule(10.0 + i, fired.append, i) for i in range(3)]
    doomed = [sim.schedule(5.0, lambda: None) for _ in range(8)]
    for timer in doomed:
        timer.cancel()
    assert sim.heap_compactions >= 1
    sim.run()
    assert fired == [0, 1, 2]
    assert sim.events_processed == len(keep)


def test_compaction_disabled_with_zero_threshold():
    sim = Simulator(compact_threshold=0)
    for _ in range(50):
        sim.schedule(1.0, lambda: None).cancel()
    assert sim.heap_compactions == 0
    assert sim.timers_cancelled == 50
    sim.run()
    assert sim.events_processed == 0


def test_perf_counters_dict_shape():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    counters = sim.perf_counters()
    assert counters["events_processed"] == 1
    assert counters["timers_created"] == 1
    assert counters["pending"] == 0
    assert counters["wall_seconds"] >= 0.0


@dataclasses.dataclass
class _Ping(Message):
    payload: str = "ping"


class _Sink(Actor):
    def __init__(self, node, address, network):
        super().__init__(node, address)
        self.received = []
        network.register(self)

    def handle_message(self, message, source):
        self.received.append((message, source))


def _build(link=LinkModel(base_delay=1.0, jitter=0.0), seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, link=link)
    nodes = [Node(sim, f"n{i}") for i in range(2)]
    actors = [_Sink(nodes[i], f"a{i}", net) for i in range(2)]
    return sim, net, nodes, actors


def test_network_totals_count_sends_and_deliveries():
    sim, net, _nodes, actors = _build()
    for _ in range(4):
        net.send("a0", "a1", _Ping())
    sim.run()
    assert net.messages_sent_total == 4
    assert net.messages_delivered_total == 4
    assert net.messages_dropped_total == 0
    assert len(actors[1].received) == 4


def test_network_totals_count_drops():
    sim, net, nodes, _actors = _build()
    nodes[1].crash()
    net.send("a0", "a1", _Ping())
    sim.run()
    assert net.messages_sent_total == 1
    assert net.messages_dropped_total == 1
    assert net.messages_delivered_total == 0


def test_network_totals_match_metrics_breakdown():
    sim, net, _nodes, _actors = _build(
        link=LinkModel(base_delay=1.0, jitter=0.5, loss_probability=0.3,
                       duplicate_probability=0.2),
        seed=7,
    )
    for _ in range(200):
        net.send("a0", "a1", _Ping())
    sim.run()
    assert net.messages_sent_total == sum(net.metrics.messages_sent.values())
    assert net.messages_delivered_total == sum(
        net.metrics.messages_delivered.values()
    )
    assert net.messages_dropped_total == sum(
        net.metrics.messages_dropped.values()
    )
    assert net.messages_duplicated_total == sum(
        net.metrics.messages_duplicated.values()
    )
