"""A short run of the CI chaos soak: it must pass and be deterministic."""

from repro.harness.soak import run_soak


def test_short_soak_passes_and_is_deterministic():
    first = run_soak(seed=11, duration=4000.0, verbose=False)
    second = run_soak(seed=11, duration=4000.0, verbose=False)
    assert first == second
    assert first["probes"] > 0
    assert first["view_changes"] > 0
