"""Smoke tests for the experiment harness (tiny parameterizations).

The full-size studies run under ``pytest benchmarks/ --benchmark-only``;
these verify each experiment's *direction* quickly so harness regressions
surface in the ordinary test run.
"""


from repro.harness import (
    e01_call_overhead,
    e03_commit_crossover,
    e05_vs_voting,
    e09_vs_isis,
    format_result,
)
from repro.harness.common import ExperimentResult, build_kv_system, run_kv_batch


def test_e01_small_run_flat_latency():
    result = e01_call_overhead(txns=16)
    assert isinstance(result, ExperimentResult)
    by_system = {row[0]: row for row in result.rows}
    unreplicated = by_system["unreplicated"]
    vr7 = by_system["vr n=7"]
    # Sync cost identical; call latency within 10%.
    assert unreplicated[2] == vr7[2] == 2.0
    assert abs(unreplicated[4] - vr7[4]) / unreplicated[4] < 0.1


def test_e03_crossover_direction():
    result = e03_commit_crossover(txns=20)
    cheap_disk = result.rows[0]
    pricey_disk = result.rows[-1]
    assert cheap_disk[-1] == "stable"
    assert pricey_disk[-1] == "vr"


def test_e05_vr_beats_voting_on_writes():
    result = e05_vs_voting(ops=24)
    write_row = result.rows[0]  # 0% reads
    _mix, _vr_sync, vr_total, rawa, maj = write_row
    assert vr_total < rawa
    assert vr_total < maj


def test_e09_isis_growth_direction():
    result = e09_vs_isis(txn_counts=(1, 8), ops_per_txn=3)
    first, last = result.rows[0], result.rows[-1]
    # VR flat within noise; Isis strictly growing.
    assert abs(first[1] - last[1]) < 0.25 * first[1]
    assert last[2] > first[2]
    assert last[3] > first[3]


def test_format_result_renders():
    result = ExperimentResult(
        exp_id="EX",
        title="example",
        claim="a claim",
        headers=["a", "b"],
        rows=[[1, 2]],
        notes="a note",
    )
    text = format_result(result)
    assert "EX" in text and "a claim" in text and "a note" in text


def test_build_kv_system_helper():
    rt, kv, clients, driver, spec = build_kv_system(seed=1, n_cohorts=3)
    stats = run_kv_batch(rt, driver, spec, 5, read_fraction=0.5)
    assert stats.committed == 5
    rt.quiesce()
    rt.check_invariants()


def test_harness_cli_list(capsys):
    from repro.harness.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "e13_end_to_end" in out


def test_harness_cli_unknown_experiment(capsys):
    from repro.harness.__main__ import main

    assert main(["E99"]) == 2
