"""Recovery must age out pre-crash liveness evidence (detector hygiene).

A heartbeat heard before a long downtime is not evidence the peer is
alive *now*, and an inter-arrival cadence learned under pre-crash loss
would make post-recover suspicion far too lazy.  ``Cohort.on_recover``
therefore ages out anything older than one suspect window; evidence
within the window survives (those beats genuinely are recent).
"""


from tests.conftest import build_counter_system


def test_long_downtime_ages_out_last_heard_and_detector_state():
    rt, counter, _clients, driver = build_counter_system(seed=61)
    driver.call("clients", "bump", 1)
    rt.run_for(400)
    victim = counter.cohort(1)
    peers = [mid for mid in victim.last_heard if mid != victim.mymid]
    assert any(victim.last_heard[mid] > 0.0 for mid in peers)

    counter.crash_cohort(1)
    # Down for many suspect windows: every pre-crash beat goes stale.
    rt.run_for(20 * rt.config.suspect_timeout())
    counter.recover_cohort(1)

    for mid in peers:
        assert victim.last_heard[mid] == 0.0
        assert victim.detect.last_heard(mid) == 0.0


def test_short_downtime_keeps_recent_evidence():
    rt, counter, _clients, driver = build_counter_system(seed=62)
    driver.call("clients", "bump", 1)
    rt.run_for(400)
    victim = counter.cohort(1)
    peers = [mid for mid in victim.last_heard if mid != victim.mymid]
    before = dict(victim.last_heard)
    assert any(before[mid] > 0.0 for mid in peers)

    counter.crash_cohort(1)
    # Back up well inside one suspect window: the beats are still recent.
    rt.run_for(rt.config.suspect_timeout() / 4.0)
    counter.recover_cohort(1)

    kept = [mid for mid in peers if before[mid] > 0.0]
    for mid in kept:
        assert victim.last_heard[mid] == before[mid]


def test_recovered_cohort_suspects_a_dead_peer_promptly():
    """The point of aging: a recovered cohort must not treat a peer it
    heard only before its downtime as currently alive."""
    rt, counter, _clients, driver = build_counter_system(seed=63)
    driver.call("clients", "bump", 1)
    rt.run_for(400)
    victim = counter.cohort(1)
    dead = counter.cohort(2)

    counter.crash_cohort(2)  # the peer dies first...
    rt.run_for(20)
    counter.crash_cohort(1)  # ...then the victim, for a long time
    rt.run_for(20 * rt.config.suspect_timeout())
    counter.recover_cohort(1)
    # Immediately after recovery the dead peer's pre-crash beats are gone,
    # so nothing claims it was heard from recently.
    assert victim.detect.last_heard(dead.mymid) == 0.0
