"""Tests for protocol message shapes, sizes, and configuration."""

import dataclasses


from repro.config import ProtocolConfig
from repro.core import messages as m
from repro.core.view import View
from repro.core.viewstamp import ViewId, Viewstamp
from repro.storage.stable import StableStoragePolicy
from repro.txn.ids import Aid, CallId
from repro.txn.pset import PSet, PSetPair

V1 = ViewId(1, 0)
AID = Aid("g", V1, 1)


def test_all_messages_are_dataclasses_with_types():
    for name in dir(m):
        obj = getattr(m, name)
        if isinstance(obj, type) and name.endswith("Msg"):
            assert dataclasses.is_dataclass(obj), name


def test_message_type_names():
    call = m.CallMsg(
        viewid=V1, call_id=CallId(AID, 1), aid=AID, proc="p", args=(),
        reply_to="x",
    )
    assert call.msg_type == "CallMsg"
    assert call.byte_size() > 32


def test_prepare_size_scales_with_pset():
    small = m.PrepareMsg(aid=AID, pset_pairs=(), coordinator="c")
    pairs = tuple(
        PSetPair("g", Viewstamp(V1, i)) for i in range(10)
    )
    large = m.PrepareMsg(aid=AID, pset_pairs=pairs, coordinator="c")
    assert large.byte_size() > small.byte_size()


def test_pset_byte_size_small_and_discardable():
    """The paper's point: psets are a few dozen bytes per call."""
    pset = PSet()
    for i in range(3):
        pset.add("g", Viewstamp(V1, i))
    assert pset.byte_size() < 100


def test_view_byte_size():
    view = View(primary=0, backups=(1, 2, 3, 4))
    assert view.byte_size() == 40


def test_config_defaults_sane():
    config = ProtocolConfig()
    assert config.suspect_timeout() > config.im_alive_interval
    assert config.force_timeout > config.flush_interval
    assert config.underling_timeout > config.invite_timeout
    assert config.storage_policy is StableStoragePolicy.MINIMAL
    assert config.viewstamp_checks is True
    assert config.force_on_call is False
    assert config.unilateral_edits is False
    assert config.extended_formation_rule is False


def test_config_replace_for_ablations():
    config = dataclasses.replace(ProtocolConfig(), viewstamp_checks=False)
    assert config.viewstamp_checks is False
    assert ProtocolConfig().viewstamp_checks is True


def test_aid_ordering_and_embedding():
    a1 = Aid("g", V1, 1)
    a2 = Aid("g", V1, 2)
    a3 = Aid("g", ViewId(2, 0), 1)
    assert a1 < a2 < a3
    assert a1.groupid == "g"
    assert a1.viewid == V1


def test_call_id_subaction_distinguishes_attempts():
    first = CallId(AID, 1, subaction=1)
    retry = CallId(AID, 1, subaction=2)
    assert first != retry
    assert str(first) != str(retry)


def test_pset_merge_and_participants():
    a = PSet()
    a.add("g1", Viewstamp(V1, 1))
    b = PSet()
    b.add("g2", Viewstamp(V1, 2))
    a.merge(b)
    assert a.participants() == frozenset({"g1", "g2"})
    assert len(a) == 2


def test_pset_set_semantics():
    pset = PSet()
    pset.add("g", Viewstamp(V1, 1))
    pset.add("g", Viewstamp(V1, 1))  # duplicate
    assert len(pset) == 1


def test_pset_copy_independent():
    pset = PSet()
    pset.add("g", Viewstamp(V1, 1))
    clone = pset.copy()
    clone.add("g", Viewstamp(V1, 2))
    assert len(pset) == 1
    assert len(clone) == 2
