"""Tests for viewids, viewstamps, histories, compatible(), vs_max()."""

import pytest
from hypothesis import given, strategies as st

from repro.core.viewstamp import History, ViewId, Viewstamp, compatible, vs_max
from repro.txn.pset import PSet

V1 = ViewId(1, 0)
V2 = ViewId(2, 1)
V3 = ViewId(3, 0)


def test_viewid_total_order():
    assert ViewId(1, 0) < ViewId(1, 1) < ViewId(2, 0)


def test_viewid_next_for_exceeds_any_mid():
    vid = ViewId(5, 9)
    nxt = vid.next_for(0)
    assert nxt > vid
    assert nxt == ViewId(6, 0)


def test_viewstamp_order_viewid_dominates():
    assert Viewstamp(V1, 100) < Viewstamp(V2, 1)
    assert Viewstamp(V2, 1) < Viewstamp(V2, 2)


def test_history_latest():
    history = History([Viewstamp(V1, 3)])
    assert history.latest == Viewstamp(V1, 3)


def test_empty_history_latest_raises():
    with pytest.raises(ValueError):
        History().latest


def test_history_open_view_appends_zero():
    history = History([Viewstamp(V1, 5)])
    history.open_view(V2)
    assert history.latest == Viewstamp(V2, 0)
    assert len(history) == 2


def test_history_open_view_rejects_regression():
    history = History([Viewstamp(V2, 1)])
    with pytest.raises(ValueError):
        history.open_view(V1)
    with pytest.raises(ValueError):
        history.open_view(V2)


def test_history_advance():
    history = History([Viewstamp(V1, 0)])
    history.advance(V1, 4)
    assert history.latest == Viewstamp(V1, 4)


def test_history_advance_rejects_wrong_view():
    history = History([Viewstamp(V1, 0)])
    with pytest.raises(ValueError):
        history.advance(V2, 1)


def test_history_advance_rejects_regression():
    history = History([Viewstamp(V1, 5)])
    with pytest.raises(ValueError):
        history.advance(V1, 4)


def test_history_knows():
    history = History([Viewstamp(V1, 5), Viewstamp(V2, 2)])
    assert history.knows(Viewstamp(V1, 5))
    assert history.knows(Viewstamp(V1, 1))
    assert history.knows(Viewstamp(V2, 2))
    assert not history.knows(Viewstamp(V2, 3))
    assert not history.knows(Viewstamp(V3, 0))


def test_history_rejects_unordered_entries():
    with pytest.raises(ValueError):
        History([Viewstamp(V2, 0), Viewstamp(V1, 0)])


def test_compatible_true_when_history_covers():
    history = History([Viewstamp(V1, 5)])
    pset = PSet()
    pset.add("g", Viewstamp(V1, 3))
    assert compatible(pset.pairs(), "g", history)


def test_compatible_false_when_event_lost():
    """The view-change-lost-a-call case: pset names ts 7, history covers 5."""
    history = History([Viewstamp(V1, 5), Viewstamp(V2, 0)])
    pset = PSet()
    pset.add("g", Viewstamp(V1, 7))
    assert not compatible(pset.pairs(), "g", history)


def test_compatible_ignores_other_groups():
    history = History([Viewstamp(V1, 0)])
    pset = PSet()
    pset.add("other", Viewstamp(V3, 99))
    assert compatible(pset.pairs(), "g", history)


def test_compatible_unknown_view_is_incompatible():
    history = History([Viewstamp(V2, 5)])
    pset = PSet()
    pset.add("g", Viewstamp(V1, 1))  # history has no entry for V1
    assert not compatible(pset.pairs(), "g", history)


def test_vs_max_picks_latest_for_group():
    pset = PSet()
    pset.add("g", Viewstamp(V1, 9))
    pset.add("g", Viewstamp(V2, 1))
    pset.add("other", Viewstamp(V3, 50))
    assert vs_max(pset.pairs(), "g") == Viewstamp(V2, 1)


def test_vs_max_none_when_group_absent():
    pset = PSet()
    pset.add("other", Viewstamp(V1, 1))
    assert vs_max(pset.pairs(), "g") is None


# -- property-based tests ---------------------------------------------------

viewids = st.builds(ViewId, st.integers(0, 50), st.integers(0, 6))
viewstamps = st.builds(Viewstamp, viewids, st.integers(0, 1000))


@given(viewstamps, viewstamps)
def test_viewstamp_order_is_total(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(st.lists(viewstamps, min_size=1, max_size=8))
def test_viewstamp_max_is_unique_upper_bound(stamps):
    top = max(stamps)
    assert all(s <= top for s in stamps)


@given(st.lists(st.tuples(viewids, st.integers(0, 100)), min_size=1, max_size=6))
def test_history_knows_monotone_in_ts(entries):
    # Build a valid history from sorted unique viewids.
    unique = {}
    for vid, ts in entries:
        unique[vid] = max(ts, unique.get(vid, 0))
    ordered = sorted(unique.items())
    history = History([Viewstamp(vid, ts) for vid, ts in ordered])
    for vid, ts in ordered:
        # Everything at-or-below the covered timestamp is known.
        assert history.knows(Viewstamp(vid, ts))
        if ts > 0:
            assert history.knows(Viewstamp(vid, ts - 1))
        assert not history.knows(Viewstamp(vid, ts + 1))


@given(st.lists(st.tuples(st.sampled_from(["g", "h"]), viewstamps), max_size=8))
def test_vs_max_is_member_and_maximal(pairs):
    pset = PSet()
    for group, stamp in pairs:
        pset.add(group, stamp)
    top = vs_max(pset.pairs(), "g")
    group_stamps = [p.vs for p in pset.pairs() if p.groupid == "g"]
    if not group_stamps:
        assert top is None
    else:
        assert top in group_stamps
        assert all(stamp <= top for stamp in group_stamps)


@given(st.lists(st.tuples(st.sampled_from(["g", "h"]), viewstamps), max_size=8))
def test_compatible_with_own_history_of_maxima(pairs):
    """A history that covers the per-view maxima of a pset is compatible."""
    pset = PSet()
    for group, stamp in pairs:
        pset.add(group, stamp)
    maxima = {}
    for pair in pset.pairs():
        if pair.groupid != "g":
            continue
        maxima[pair.vs.id] = max(pair.vs.ts, maxima.get(pair.vs.id, 0))
    history = History(
        [Viewstamp(vid, ts) for vid, ts in sorted(maxima.items())]
    )
    assert compatible(pset.pairs(), "g", history)
