"""Tests for the communication buffer: add, force_to, acks, trimming."""

import pytest

from repro.core.buffer import CommunicationBuffer, ForceAbandoned
from repro.core.events import Aborted
from repro.core.messages import BufferAckMsg, BufferMsg
from repro.core.viewstamp import ViewId, Viewstamp
from repro.sim.kernel import Simulator
from repro.txn.ids import Aid

VID = ViewId(2, 0)
OLD_VID = ViewId(1, 0)


def record(n=0):
    return Aborted(aid=Aid("g", VID, n))


class Harness:
    """Captures sends and drives timers for one buffer under test."""

    def __init__(
        self,
        backups=(1, 2),
        config_size=3,
        force_timeout=50.0,
        batch_enabled=False,
        max_batch=64,
        flush_delay=1.0,
        pipeline_depth=1,
    ):
        self.sim = Simulator()
        self.sent = []  # (mid, message)
        self.force_failures = 0
        self.buffer = CommunicationBuffer(
            viewid=VID,
            backups=backups,
            configuration_size=config_size,
            send=lambda mid, message: self.sent.append((mid, message)),
            set_timer=lambda delay, fn, *a: self.sim.schedule(delay, fn, *a),
            on_force_failure=self._on_failure,
            force_timeout=force_timeout,
            batch_enabled=batch_enabled,
            max_batch=max_batch,
            flush_delay=flush_delay,
            pipeline_depth=pipeline_depth,
            clock=lambda: self.sim.now,
        )

    def records_to(self, mid):
        """Every record ts shipped to *mid*, in send order (with repeats)."""
        return [
            ts
            for sent_mid, message in self.sent
            if sent_mid == mid
            for ts, _record in message.records
        ]

    def _on_failure(self):
        self.force_failures += 1

    def ack(self, mid, ts):
        self.buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=ts, mid=mid))


def test_add_assigns_increasing_timestamps():
    h = Harness()
    assert h.buffer.add(record()) == Viewstamp(VID, 1)
    assert h.buffer.add(record()) == Viewstamp(VID, 2)
    assert h.buffer.timestamp == 2


def test_force_old_view_returns_immediately():
    """"If the viewstamp is not for the current view it returns immediately.""" ""
    h = Harness()
    force = h.buffer.force_to(Viewstamp(OLD_VID, 99))
    assert force.done and force.exception() is None


def test_force_none_returns_immediately():
    h = Harness()
    assert h.buffer.force_to(None).done


def test_force_waits_for_sub_majority():
    h = Harness()  # config 3 -> sub-majority 1
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    assert not force.done
    h.ack(1, 1)
    assert force.done


def test_force_already_satisfied_is_immediate():
    h = Harness()
    vs = h.buffer.add(record())
    h.buffer.flush()
    h.ack(1, 1)
    assert h.buffer.force_to(vs).done


def test_force_five_cohort_group_needs_two_backups():
    h = Harness(backups=(1, 2, 3, 4), config_size=5)  # sub-majority 2
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.ack(1, 1)
    assert not force.done
    h.ack(2, 1)
    assert force.done


def test_single_cohort_group_forces_trivially():
    h = Harness(backups=(), config_size=1)
    vs = h.buffer.add(record())
    assert h.buffer.force_to(vs).done


def test_force_triggers_immediate_flush():
    h = Harness()
    vs = h.buffer.add(record())
    assert h.sent == []
    h.buffer.force_to(vs)
    assert len(h.sent) == 2  # one BufferMsg per backup
    assert all(isinstance(message, BufferMsg) for _mid, message in h.sent)


def test_flush_sends_only_unacked_suffix():
    h = Harness()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    h.ack(1, 1)
    h.sent.clear()
    h.buffer.flush()
    for mid, message in h.sent:
        if mid == 1:
            assert [ts for ts, _r in message.records] == [2]
        else:
            assert [ts for ts, _r in message.records] == [1, 2]


def test_flush_skips_fully_acked_backup():
    h = Harness()
    h.buffer.add(record())
    h.ack(1, 1)
    h.sent.clear()
    h.buffer.flush()
    assert {mid for mid, _m in h.sent} == {2}


def test_force_timeout_fails_and_signals():
    h = Harness(force_timeout=10.0)
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.sim.run()
    assert h.force_failures == 1
    assert isinstance(force.exception(), ForceAbandoned)


def test_ack_cancels_force_timeout():
    h = Harness(force_timeout=10.0)
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.ack(1, 1)
    h.sim.run()
    assert h.force_failures == 0
    assert force.done and force.exception() is None


def test_stale_ack_ignored():
    h = Harness()
    h.buffer.add(record())
    h.buffer.on_ack(BufferAckMsg(viewid=OLD_VID, acked_ts=1, mid=1))
    assert h.buffer.acked[1] == 0


def test_ack_from_stranger_ignored():
    h = Harness()
    h.buffer.add(record())
    h.buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=1, mid=99))
    assert 99 not in h.buffer.acked


def test_ack_regression_ignored():
    h = Harness()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    h.ack(1, 2)
    h.ack(1, 1)
    assert h.buffer.acked[1] == 2


def test_close_fails_pending_forces():
    h = Harness()
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.buffer.close()
    assert isinstance(force.exception(), ForceAbandoned)


def test_closed_buffer_rejects_add_and_force():
    h = Harness()
    h.buffer.close()
    with pytest.raises(Exception):
        h.buffer.add(record())
    assert isinstance(h.buffer.force_to(Viewstamp(VID, 0)).exception(), ForceAbandoned)


def test_trim_drops_universally_acked_records():
    h = Harness()
    for n in range(5):
        h.buffer.add(record(n))
    h.ack(1, 3)
    h.ack(2, 3)
    assert h.buffer._base_ts == 3
    assert [ts for ts, _r in h.buffer._records] == [4, 5]
    # A later flush still reaches both backups with the suffix.
    h.sent.clear()
    h.buffer.flush()
    for _mid, message in h.sent:
        assert [ts for ts, _r in message.records] == [4, 5]


def test_set_backups_extends_and_shrinks():
    h = Harness()
    h.buffer.set_backups((1, 2, 3))
    assert h.buffer.acked[3] == 0
    h.buffer.set_backups((1,))
    assert set(h.buffer.acked) == {1}


def test_excluding_slow_backup_can_complete_force():
    """Unilateral exclusion: removing a dead backup lets a force that only
    needs a sub-majority complete with the live ones."""
    h = Harness(backups=(1, 2, 3, 4), config_size=5)  # sub-majority 2
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.ack(1, 1)
    assert not force.done
    h.buffer.set_backups((1, 2))
    h.ack(2, 1)
    assert force.done


def test_force_beyond_generated_raises():
    h = Harness()
    with pytest.raises(Exception):
        h.buffer.force_to(Viewstamp(VID, 5))


def test_unforced_count():
    h = Harness()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    assert h.buffer.unforced_count == 2
    h.ack(1, 1)
    assert h.buffer.unforced_count == 1


# -- batched transmission mode (BatchConfig) --------------------------------


def batched(**kwargs):
    kwargs.setdefault("batch_enabled", True)
    return Harness(**kwargs)


def test_batched_add_defers_send_until_flush_tick():
    h = batched(flush_delay=1.0)
    for n in range(1, 4):
        h.buffer.add(record(n))
    assert h.sent == []  # nothing ships synchronously
    h.sim.run(until=1.0)
    # One coalesced BufferMsg per backup carrying all three records.
    assert sorted(mid for mid, _m in h.sent) == [1, 2]
    assert h.records_to(1) == [1, 2, 3]
    assert h.records_to(2) == [1, 2, 3]


def test_batched_tick_ships_only_new_records():
    h = batched()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    h.sim.run(until=1.0)
    h.sent.clear()
    # No ack yet, but the send high-water mark remembers what shipped:
    # the next tick carries only the new suffix, not a full resend.
    h.buffer.add(record(3))
    h.sim.run(until=2.0)
    assert h.records_to(1) == [3]
    assert h.records_to(2) == [3]


def test_batched_window_stalls_at_pipeline_limit():
    h = batched(max_batch=2, pipeline_depth=2)
    for n in range(1, 11):
        h.buffer.add(record(n))
    h.sim.run(until=20.0)
    # Unacked, each backup gets at most pipeline_depth * max_batch = 4
    # records, then the sender stalls.
    assert h.records_to(1) == [1, 2, 3, 4]
    assert h.records_to(2) == [1, 2, 3, 4]
    # A cumulative ack opens the window and the pipe refills.
    h.sent.clear()
    h.ack(1, 4)
    h.sim.run(until=40.0)
    assert h.records_to(1) == [5, 6, 7, 8]
    assert h.records_to(2) == []


def test_batched_go_back_n_rewinds_stalled_backup():
    h = batched(max_batch=8)
    for n in range(1, 4):
        h.buffer.add(record(n))
    h.sim.run(until=1.0)
    assert h.records_to(1) == [1, 2, 3]
    h.sent.clear()
    # Backup 2 acked everything; backup 1's traffic was lost (no ack).
    h.ack(2, 3)
    # First background sweep only records per-backup ack progress ...
    h.buffer.flush()
    h.sim.run(until=2.0)
    # ... the second sees backup 1's ack unmoved with records outstanding,
    # rewinds its send mark to the ack, and re-sends the suffix.
    h.buffer.flush()
    h.sim.run(until=3.0)
    assert h.records_to(1) == [1, 2, 3]
    assert h.records_to(2) == []  # fully-acked backup is left alone


def test_batched_cumulative_ack_resolves_every_covered_force():
    h = batched()
    vs1 = h.buffer.add(record(1))
    vs2 = h.buffer.add(record(2))
    f1 = h.buffer.force_to(vs1)
    f2 = h.buffer.force_to(vs2)
    assert not f1.done and not f2.done
    # One cumulative ack covering both timestamps resolves both forces.
    h.ack(1, 2)
    assert f1.done and f2.done


def test_batched_ack_regression_does_not_rewind_send_mark():
    h = batched()
    for n in range(1, 4):
        h.buffer.add(record(n))
    h.sim.run(until=1.0)
    h.ack(1, 3)
    h.sent.clear()
    # A stale (lower) cumulative ack must not move progress backwards
    # or trigger redundant resends.
    h.ack(1, 1)
    assert h.buffer.acked[1] == 3
    h.buffer.flush()
    h.sim.run(until=2.0)
    assert h.records_to(1) == []


def test_batched_ack_advances_send_mark_past_lost_sends():
    h = batched(max_batch=1, pipeline_depth=1)
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    h.sim.run(until=5.0)  # window of 1: only ts=1 ships unacked
    assert h.records_to(1) == [1]
    # The backup learned ts=2 some other way (e.g. a rewound resend raced
    # a late ack): the ack fast-forwards the send mark, no resend of 1-2.
    h.sent.clear()
    h.ack(1, 2)
    h.sim.run(until=10.0)
    assert h.records_to(1) == []
