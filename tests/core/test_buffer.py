"""Tests for the communication buffer: add, force_to, acks, trimming."""

import pytest

from repro.core.buffer import CommunicationBuffer, ForceAbandoned
from repro.core.events import Aborted
from repro.core.messages import BufferAckMsg, BufferMsg
from repro.core.viewstamp import ViewId, Viewstamp
from repro.sim.kernel import Simulator
from repro.txn.ids import Aid

VID = ViewId(2, 0)
OLD_VID = ViewId(1, 0)


def record(n=0):
    return Aborted(aid=Aid("g", VID, n))


class Harness:
    """Captures sends and drives timers for one buffer under test."""

    def __init__(self, backups=(1, 2), config_size=3, force_timeout=50.0):
        self.sim = Simulator()
        self.sent = []  # (mid, message)
        self.force_failures = 0
        self.buffer = CommunicationBuffer(
            viewid=VID,
            backups=backups,
            configuration_size=config_size,
            send=lambda mid, message: self.sent.append((mid, message)),
            set_timer=lambda delay, fn, *a: self.sim.schedule(delay, fn, *a),
            on_force_failure=self._on_failure,
            force_timeout=force_timeout,
        )

    def _on_failure(self):
        self.force_failures += 1

    def ack(self, mid, ts):
        self.buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=ts, mid=mid))


def test_add_assigns_increasing_timestamps():
    h = Harness()
    assert h.buffer.add(record()) == Viewstamp(VID, 1)
    assert h.buffer.add(record()) == Viewstamp(VID, 2)
    assert h.buffer.timestamp == 2


def test_force_old_view_returns_immediately():
    """"If the viewstamp is not for the current view it returns immediately.""" ""
    h = Harness()
    force = h.buffer.force_to(Viewstamp(OLD_VID, 99))
    assert force.done and force.exception() is None


def test_force_none_returns_immediately():
    h = Harness()
    assert h.buffer.force_to(None).done


def test_force_waits_for_sub_majority():
    h = Harness()  # config 3 -> sub-majority 1
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    assert not force.done
    h.ack(1, 1)
    assert force.done


def test_force_already_satisfied_is_immediate():
    h = Harness()
    vs = h.buffer.add(record())
    h.buffer.flush()
    h.ack(1, 1)
    assert h.buffer.force_to(vs).done


def test_force_five_cohort_group_needs_two_backups():
    h = Harness(backups=(1, 2, 3, 4), config_size=5)  # sub-majority 2
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.ack(1, 1)
    assert not force.done
    h.ack(2, 1)
    assert force.done


def test_single_cohort_group_forces_trivially():
    h = Harness(backups=(), config_size=1)
    vs = h.buffer.add(record())
    assert h.buffer.force_to(vs).done


def test_force_triggers_immediate_flush():
    h = Harness()
    vs = h.buffer.add(record())
    assert h.sent == []
    h.buffer.force_to(vs)
    assert len(h.sent) == 2  # one BufferMsg per backup
    assert all(isinstance(message, BufferMsg) for _mid, message in h.sent)


def test_flush_sends_only_unacked_suffix():
    h = Harness()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    h.ack(1, 1)
    h.sent.clear()
    h.buffer.flush()
    for mid, message in h.sent:
        if mid == 1:
            assert [ts for ts, _r in message.records] == [2]
        else:
            assert [ts for ts, _r in message.records] == [1, 2]


def test_flush_skips_fully_acked_backup():
    h = Harness()
    h.buffer.add(record())
    h.ack(1, 1)
    h.sent.clear()
    h.buffer.flush()
    assert {mid for mid, _m in h.sent} == {2}


def test_force_timeout_fails_and_signals():
    h = Harness(force_timeout=10.0)
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.sim.run()
    assert h.force_failures == 1
    assert isinstance(force.exception(), ForceAbandoned)


def test_ack_cancels_force_timeout():
    h = Harness(force_timeout=10.0)
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.ack(1, 1)
    h.sim.run()
    assert h.force_failures == 0
    assert force.done and force.exception() is None


def test_stale_ack_ignored():
    h = Harness()
    h.buffer.add(record())
    h.buffer.on_ack(BufferAckMsg(viewid=OLD_VID, acked_ts=1, mid=1))
    assert h.buffer.acked[1] == 0


def test_ack_from_stranger_ignored():
    h = Harness()
    h.buffer.add(record())
    h.buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=1, mid=99))
    assert 99 not in h.buffer.acked


def test_ack_regression_ignored():
    h = Harness()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    h.ack(1, 2)
    h.ack(1, 1)
    assert h.buffer.acked[1] == 2


def test_close_fails_pending_forces():
    h = Harness()
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.buffer.close()
    assert isinstance(force.exception(), ForceAbandoned)


def test_closed_buffer_rejects_add_and_force():
    h = Harness()
    h.buffer.close()
    with pytest.raises(Exception):
        h.buffer.add(record())
    assert isinstance(h.buffer.force_to(Viewstamp(VID, 0)).exception(), ForceAbandoned)


def test_trim_drops_universally_acked_records():
    h = Harness()
    for n in range(5):
        h.buffer.add(record(n))
    h.ack(1, 3)
    h.ack(2, 3)
    assert h.buffer._base_ts == 3
    assert [ts for ts, _r in h.buffer._records] == [4, 5]
    # A later flush still reaches both backups with the suffix.
    h.sent.clear()
    h.buffer.flush()
    for _mid, message in h.sent:
        assert [ts for ts, _r in message.records] == [4, 5]


def test_set_backups_extends_and_shrinks():
    h = Harness()
    h.buffer.set_backups((1, 2, 3))
    assert h.buffer.acked[3] == 0
    h.buffer.set_backups((1,))
    assert set(h.buffer.acked) == {1}


def test_excluding_slow_backup_can_complete_force():
    """Unilateral exclusion: removing a dead backup lets a force that only
    needs a sub-majority complete with the live ones."""
    h = Harness(backups=(1, 2, 3, 4), config_size=5)  # sub-majority 2
    vs = h.buffer.add(record())
    force = h.buffer.force_to(vs)
    h.ack(1, 1)
    assert not force.done
    h.buffer.set_backups((1, 2))
    h.ack(2, 1)
    assert force.done


def test_force_beyond_generated_raises():
    h = Harness()
    with pytest.raises(Exception):
        h.buffer.force_to(Viewstamp(VID, 5))


def test_unforced_count():
    h = Harness()
    h.buffer.add(record(1))
    h.buffer.add(record(2))
    assert h.buffer.unforced_count == 2
    h.ack(1, 1)
    assert h.buffer.unforced_count == 1
