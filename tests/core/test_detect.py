"""Unit tests for repro.detect: RTT estimation, backoff, suspicion."""

import pytest

from repro.config import ProtocolConfig
from repro.detect import AdaptiveTimeouts, Backoff, FailureDetector, RttEstimator
from repro.sim.rng import SeededRng


# -- RttEstimator -----------------------------------------------------------


def test_rtt_no_samples_reports_none():
    est = RttEstimator()
    assert est.rto is None
    assert est.samples == 0


def test_rtt_first_sample_initializes_srtt_and_var():
    est = RttEstimator()
    est.observe(8.0)
    assert est.srtt == 8.0
    assert est.rttvar == 4.0
    assert est.rto == 8.0 + 4.0 * 4.0


def test_rtt_converges_on_steady_samples():
    est = RttEstimator()
    for _ in range(200):
        est.observe(5.0)
    assert est.srtt == pytest.approx(5.0, rel=1e-6)
    assert est.rttvar == pytest.approx(0.0, abs=1e-6)
    assert est.rto == pytest.approx(5.0, rel=1e-3)


def test_rtt_variance_grows_with_jittery_samples():
    est = RttEstimator()
    for i in range(100):
        est.observe(5.0 if i % 2 == 0 else 15.0)
    assert est.rttvar > 2.0
    assert est.rto > est.srtt


def test_rtt_ignores_nonpositive_samples():
    est = RttEstimator()
    est.observe(0.0)
    est.observe(-3.0)
    assert est.rto is None


def test_rtt_reset_forgets_history():
    est = RttEstimator()
    est.observe(5.0)
    est.reset()
    assert est.rto is None
    assert est.samples == 0


# -- AdaptiveTimeouts -------------------------------------------------------


def test_adaptive_timeouts_fixed_before_first_sample():
    config = ProtocolConfig()
    timeouts = AdaptiveTimeouts(config, RttEstimator())
    assert timeouts.call_timeout() == config.call_timeout
    assert timeouts.prepare_timeout() == config.prepare_timeout
    assert timeouts.commit_retry_interval() == config.commit_retry_interval


def test_adaptive_timeouts_disabled_always_fixed():
    config = ProtocolConfig(adaptive_timeouts=False)
    rtt = RttEstimator()
    rtt.observe(1.0)
    timeouts = AdaptiveTimeouts(config, rtt)
    assert timeouts.call_timeout() == config.call_timeout


def test_adaptive_timeouts_shrink_with_fast_rtt_but_respect_floor():
    config = ProtocolConfig()
    rtt = RttEstimator()
    for _ in range(50):
        rtt.observe(0.5)  # tiny RTT: derived timeout would be ~1.5
    timeouts = AdaptiveTimeouts(config, rtt)
    assert timeouts.call_timeout() == config.min_timeout


def test_adaptive_timeouts_never_exceed_fixed_ceiling():
    config = ProtocolConfig()
    rtt = RttEstimator()
    rtt.observe(1000.0)  # pathological RTT: derived value clamps to fixed
    timeouts = AdaptiveTimeouts(config, rtt)
    assert timeouts.call_timeout() == config.call_timeout
    assert timeouts.prepare_timeout() == config.prepare_timeout


def test_adaptive_timeouts_in_band_value():
    config = ProtocolConfig()
    rtt = RttEstimator()
    for _ in range(50):
        rtt.observe(4.0)
    timeouts = AdaptiveTimeouts(config, rtt)
    # 3 * rto with rto -> ~4: inside (min_timeout, call_timeout).
    assert config.min_timeout < timeouts.call_timeout() < config.call_timeout


# -- Backoff ----------------------------------------------------------------


def test_backoff_growth_and_cap_without_jitter():
    backoff = Backoff(10.0, SeededRng(1), multiplier=2.0, cap_factor=8.0,
                      jitter=0.0)
    assert [backoff.next() for _ in range(5)] == [10.0, 20.0, 40.0, 80.0, 80.0]


def test_backoff_same_seed_same_delays():
    a = Backoff(10.0, SeededRng(42))
    b = Backoff(10.0, SeededRng(42))
    assert [a.next() for _ in range(6)] == [b.next() for _ in range(6)]


def test_backoff_jitter_within_bounds():
    backoff = Backoff(10.0, SeededRng(7), multiplier=1.0, cap_factor=1.0,
                      jitter=0.5)
    for _ in range(100):
        delay = backoff.next()
        assert 7.5 <= delay <= 12.5


def test_backoff_reset_restarts_and_reports_pending():
    backoff = Backoff(10.0, SeededRng(3), jitter=0.0)
    assert backoff.reset() is False
    backoff.next()
    backoff.next()
    assert backoff.reset() is True
    assert backoff.next() == 10.0


def test_backoff_per_draw_base_override():
    backoff = Backoff(10.0, SeededRng(5), jitter=0.0)
    assert backoff.next(4.0) == 4.0
    assert backoff.next(4.0) == 8.0


def test_backoff_validation():
    rng = SeededRng(0)
    with pytest.raises(ValueError):
        Backoff(0.0, rng)
    with pytest.raises(ValueError):
        Backoff(1.0, rng, multiplier=0.5)
    with pytest.raises(ValueError):
        Backoff(1.0, rng, cap_factor=0.5)
    with pytest.raises(ValueError):
        Backoff(1.0, rng, jitter=2.0)


# -- FailureDetector --------------------------------------------------------


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _detector(config=None, clock=None, transitions=None):
    config = config or ProtocolConfig()
    clock = clock or _Clock()
    on_transition = None
    if transitions is not None:
        on_transition = lambda mid, s: transitions.append((mid, s))  # noqa: E731
    return (
        FailureDetector(config, peers=[1, 2], clock=clock,
                        on_transition=on_transition),
        clock,
    )


def test_fixed_mode_matches_paper_rule():
    config = ProtocolConfig(adaptive_timeouts=False)
    detector, clock = _detector(config=config)
    clock.now = 5.0
    detector.heard(1)
    clock.now = 5.0 + config.suspect_timeout()
    assert not detector.is_suspect(1)  # strict inequality, as before
    clock.now += 0.001
    assert detector.is_suspect(1)


def test_adaptive_suspicion_uses_learned_interval():
    config = ProtocolConfig()
    detector, clock = _detector(config=config)
    # Steady beats at exactly the configured period.
    for beat in range(1, 11):
        clock.now = beat * config.im_alive_interval
        detector.heard(1)
    assert detector.expected_interval(1) >= config.im_alive_interval
    # Just under the threshold: not suspect; just past it: suspect.
    threshold = config.suspect_multiplier * detector.expected_interval(1)
    clock.now = detector.last_heard(1) + threshold - 0.001
    assert not detector.is_suspect(1)
    clock.now = detector.last_heard(1) + threshold + 0.001
    assert detector.is_suspect(1)


def test_lossy_beats_stretch_expected_interval():
    config = ProtocolConfig()
    detector, clock = _detector(config=config)
    # Every other beat lost: observed inter-arrival is twice the period.
    for beat in range(1, 11):
        clock.now = beat * 2 * config.im_alive_interval
        detector.heard(1)
    assert detector.expected_interval(1) >= 2 * config.im_alive_interval


def test_transitions_fire_once_per_crossing():
    transitions = []
    detector, clock = _detector(transitions=transitions)
    clock.now = 10.0
    detector.heard(1)
    clock.now = 1000.0
    assert detector.is_suspect(1)
    assert detector.is_suspect(1)  # still suspect: no second event
    detector.heard(1)  # trust restored
    assert transitions == [(1, True), (1, False)]


def test_heartbeat_sent_at_feeds_rtt():
    detector, clock = _detector()
    clock.now = 12.0
    detector.heard(1, sent_at=10.0)  # one-way 2.0 -> RTT 4.0
    assert detector.rto(1) == pytest.approx(4.0 + 4.0 * 2.0)
    assert detector.group_rto() == detector.rto(1)
    assert detector.rto(2) is None


def test_unknown_peer_is_ignored():
    detector, clock = _detector()
    detector.heard(99)
    detector.observe_rtt(99, 1.0)
    assert not detector.is_suspect(99)
    assert detector.suspicion(99) == 0.0


def test_reset_forgets_all_peers():
    detector, clock = _detector()
    clock.now = 12.0
    detector.heard(1, sent_at=10.0)
    detector.reset()
    assert detector.last_heard(1) == 0.0
    assert detector.group_rto() is None
