"""Tests for the ModuleGroup wiring and inspection API."""

import pytest

from repro import EmptyModule, Runtime

from tests.conftest import CounterSpec


def build(n=3):
    rt = Runtime(seed=0)
    group = rt.create_group("g", CounterSpec(), n_cohorts=n)
    return rt, group


def test_configuration_addresses():
    _rt, group = build()
    assert group.configuration == ((0, "g/0"), (1, "g/1"), (2, "g/2"))
    assert group.size == 3
    assert group.majority_size() == 2


def test_active_primary_initial():
    _rt, group = build()
    primary = group.active_primary()
    assert primary is not None and primary.mymid == 0


def test_active_primary_none_when_down():
    _rt, group = build()
    group.crash_cohort(0)
    assert group.active_primary() is None or group.active_primary().mymid != 0


def test_active_cohorts_excludes_down():
    _rt, group = build()
    group.crash_cohort(1)
    mids = {c.mymid for c in group.active_cohorts()}
    assert 1 not in mids


def test_crash_primary_returns_mid():
    _rt, group = build()
    assert group.crash_primary() == 0
    assert group.crash_primary() is None or True  # second call mid-change OK


def test_read_object_requires_primary():
    _rt, group = build()
    for mid in range(3):
        group.crash_cohort(mid)
    with pytest.raises(RuntimeError):
        group.read_object("count")


def test_converged_initially():
    rt, group = build()
    rt.run_for(50)
    assert group.converged()
    assert group.divergence_report() == []


def test_highest_viewid_tracks_changes():
    rt, group = build()
    before = group.highest_viewid()
    group.crash_primary()
    rt.run_for(1000)
    assert group.highest_viewid() > before


def test_single_cohort_group_works():
    rt = Runtime(seed=1)
    group = rt.create_group("solo", CounterSpec(), n_cohorts=1)
    assert group.active_primary().mymid == 0
    assert group.majority_size() == 1


def test_duplicate_groupid_rejected():
    rt = Runtime(seed=2)
    rt.create_group("g", EmptyModule(), n_cohorts=1)
    with pytest.raises(ValueError):
        rt.create_group("g", EmptyModule(), n_cohorts=1)


def test_colocated_groups_share_nodes():
    """Two groups can share nodes (the paper's bottleneck discussion)."""
    rt = Runtime(seed=3)
    g1 = rt.create_group("g1", CounterSpec(), n_cohorts=3)
    nodes = g1.nodes()
    g2 = rt.create_group("g2", CounterSpec(), n_cohorts=3, nodes=nodes)
    assert g2.nodes() == nodes
    # Crashing a shared node takes down a cohort of each group.
    nodes[0].crash()
    assert not g1.cohort(0).node.up
    assert not g2.cohort(0).node.up
