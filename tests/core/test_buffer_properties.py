"""Property-based tests for the communication buffer's force semantics."""

from hypothesis import given, strategies as st

from repro.core.buffer import CommunicationBuffer
from repro.core.events import Aborted
from repro.core.messages import BufferAckMsg
from repro.core.view import sub_majority
from repro.core.viewstamp import ViewId, Viewstamp
from repro.sim.kernel import Simulator
from repro.txn.ids import Aid

VID = ViewId(2, 0)


def build(n_backups, config_size):
    sim = Simulator()
    buffer = CommunicationBuffer(
        viewid=VID,
        backups=tuple(range(1, n_backups + 1)),
        configuration_size=config_size,
        send=lambda mid, message: None,
        set_timer=lambda delay, fn, *a: sim.schedule(delay, fn, *a),
        on_force_failure=lambda: None,
        force_timeout=10_000.0,
    )
    return sim, buffer


configs = st.sampled_from([(2, 3), (4, 5), (6, 7)])  # (backups, config size)


@given(
    configs,
    st.integers(1, 20),                               # records added
    st.lists(st.tuples(st.integers(1, 6), st.integers(0, 25)), max_size=30),
)
def test_force_resolves_iff_sub_majority_covers(config, n_records, acks):
    """A force on ts T is resolved exactly when >= sub_majority backups have
    cumulatively acked >= T -- under any ack sequence whatsoever."""
    n_backups, config_size = config
    sim, buffer = build(n_backups, config_size)
    for i in range(n_records):
        buffer.add(Aborted(aid=Aid("g", VID, i)))
    target = Viewstamp(VID, n_records)
    force = buffer.force_to(target)

    applied = {}
    for mid, ts in acks:
        if mid > n_backups:
            continue
        ts = min(ts, n_records)
        buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=ts, mid=mid))
        applied[mid] = max(applied.get(mid, 0), ts)
        covered = sum(1 for v in applied.values() if v >= n_records)
        if covered >= sub_majority(config_size):
            assert force.done and force.exception() is None
        else:
            assert not force.done


@given(configs, st.lists(st.integers(0, 30), min_size=1, max_size=30))
def test_acks_never_regress(config, ack_sequence):
    n_backups, config_size = config
    _sim, buffer = build(n_backups, config_size)
    for i in range(30):
        buffer.add(Aborted(aid=Aid("g", VID, i)))
    high = 0
    for ts in ack_sequence:
        buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=ts, mid=1))
        high = max(high, ts)
        assert buffer.acked[1] == high


@given(st.integers(1, 40), st.integers(0, 40))
def test_trim_preserves_unacked_suffix(n_records, min_ack):
    sim, buffer = build(2, 3)
    for i in range(n_records):
        buffer.add(Aborted(aid=Aid("g", VID, i)))
    min_ack = min(min_ack, n_records)
    buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=min_ack, mid=1))
    buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=min_ack, mid=2))
    retained = [ts for ts, _r in buffer._records]
    assert retained == list(range(min_ack + 1, n_records + 1))


@given(st.integers(1, 25))
def test_timestamps_dense_and_ordered(n_records):
    _sim, buffer = build(2, 3)
    stamps = [buffer.add(Aborted(aid=Aid("g", VID, i))) for i in range(n_records)]
    assert [vs.ts for vs in stamps] == list(range(1, n_records + 1))
    assert all(vs.id == VID for vs in stamps)
