"""Tests for the view formation rule and primary selection (section 4).

These exercise ``ViewChangeController.form_view`` directly with synthetic
acceptance sets, including the paper's three-cohort A/B/C example.
"""

import pytest

from repro.core.messages import AcceptMsg
from repro.core.view import View, majority, sub_majority
from repro.core.viewstamp import ViewId, Viewstamp

V1 = ViewId(1, 0)
V2 = ViewId(2, 1)
V3 = ViewId(3, 2)


from repro.config import ProtocolConfig


class _FakeCohort:
    def __init__(self, config_size=3, extended=False):
        self.config_size = config_size
        self.config = ProtocolConfig(extended_formation_rule=extended)


def controller(config_size=3, extended=False):
    from repro.core.view_change import ViewChangeController

    return ViewChangeController(_FakeCohort(config_size, extended))


def normal(mid, viewid, ts, was_primary=False, view=None):
    return AcceptMsg(
        viewid=V3,
        mid=mid,
        crashed=False,
        viewstamp=Viewstamp(viewid, ts),
        was_primary=was_primary,
        crash_viewid=None,
        view=view,
    )


def crashed(mid, viewid):
    return AcceptMsg(
        viewid=V3,
        mid=mid,
        crashed=True,
        viewstamp=None,
        was_primary=False,
        crash_viewid=viewid,
    )


def form(responses, config_size=3, extended=False):
    return controller(config_size, extended).form_view(
        {r.mid: r for r in responses}
    )


def test_majority_helpers():
    assert majority(1) == 1
    assert majority(3) == 2
    assert majority(5) == 3
    assert sub_majority(3) == 1
    assert sub_majority(5) == 2


def test_no_majority_accepted_fails():
    assert form([normal(0, V1, 5)]) is None


def test_all_normal_majority_forms():
    view = form([normal(0, V1, 5), normal(1, V1, 3)])
    assert view is not None
    assert view.primary == 0
    assert view.backups == (1,)


def test_condition1_majority_normal_ignores_crashed():
    view = form([normal(0, V1, 5), normal(1, V1, 3), crashed(2, V1)])
    assert view is not None
    assert view.primary == 0
    assert set(view.backups) == {1, 2}  # crashed acceptor joins as backup


def test_condition2_crashed_from_old_view_ok():
    """crash_viewid < normal_viewid: the crashed cohort lost nothing new."""
    view = form([normal(0, V2, 4), crashed(1, V1)])
    assert view is not None
    assert view.primary == 0


def test_condition3_same_view_needs_old_primary():
    """The paper's A/B/C scenario.  A (mid 0) crashed and recovered while in
    view v1; B is partitioned away; C (mid 2) accepted normally with v1
    state.  C was a backup, so condition 3 fails: A may have forced events
    (to B) that C never saw."""
    result = form([crashed(0, V1), normal(2, V1, 2, was_primary=False)])
    assert result is None


def test_condition3_satisfied_when_primary_accepts():
    """Same shape, but the normal acceptor was v1's primary -- it knows at
    least as much as any backup, so the view can form."""
    view = form([crashed(0, V1), normal(2, V1, 2, was_primary=True)])
    assert view is not None
    assert view.primary == 2


def test_no_normal_acceptances_fails():
    assert form([crashed(0, V1), crashed(1, V1)]) is None


def test_crashed_newer_than_all_normals_fails():
    """A crashed cohort was in a newer view than any normal acceptor: its
    lost state may contain forced events nobody present knows."""
    result = form([normal(0, V1, 9), normal(1, V1, 9), crashed(2, V2)])
    # Majority normal (condition 1) still holds here with 2 of 3 normals.
    assert result is not None
    # ...but with a 5-group and only 2 normals it must fail:
    result5 = form(
        [normal(0, V1, 9), normal(1, V1, 9), crashed(2, V2)], config_size=5
    )
    assert result5 is None


def test_primary_is_max_viewstamp_holder():
    view = form([normal(0, V1, 3), normal(1, V1, 7), normal(2, V1, 5)])
    assert view.primary == 1


def test_viewid_dominates_ts_in_primary_choice():
    view = form([normal(0, V1, 100), normal(1, V2, 1)])
    assert view.primary == 1


def test_old_primary_preferred():
    """Minimal disruption: the old primary wins even on a viewstamp tie."""
    view = form(
        [normal(0, V1, 7, was_primary=False), normal(1, V1, 7, was_primary=True)]
    )
    assert view.primary == 1


def test_tie_breaks_to_lowest_mid():
    view = form([normal(2, V1, 7), normal(1, V1, 7)])
    assert view.primary == 1


def test_all_acceptors_become_members():
    view = form(
        [normal(0, V1, 1), normal(1, V1, 2), crashed(2, V1), normal(3, V1, 9)],
        config_size=5,
    )
    assert view is not None
    assert view.primary == 3
    assert set(view.backups) == {0, 1, 2}
    assert view.is_majority_of(5)


def test_view_rejects_primary_in_backups():
    with pytest.raises(ValueError):
        View(primary=0, backups=(0, 1))


def test_view_rejects_duplicate_backups():
    with pytest.raises(ValueError):
        View(primary=0, backups=(1, 1))


def test_view_membership():
    view = View(primary=0, backups=(1, 2))
    assert 0 in view and 2 in view and 3 not in view
    assert view.members == frozenset({0, 1, 2})


# -- extended formation rule (beyond the paper; DESIGN.md D11) -----------------


def test_extended_rule_sole_backup_suffices():
    """View V had a single backup (so every force reached it): under the
    extended rule that backup can seed the new view without V's primary.
    The paper's rule (condition 3) stalls on exactly this case."""
    old_view = View(primary=1, backups=(2,))
    responses = [
        crashed(0, V2),
        normal(2, V2, 5, was_primary=False, view=old_view),
    ]
    assert form(responses) is None  # paper rule: catastrophe
    view = form(responses, extended=True)
    assert view is not None
    assert view.primary == 2


def test_extended_rule_insufficient_backups_still_stalls():
    """With two backups and sub-majority 1, one backup cannot prove
    coverage (forces may have gone to the other backup only)."""
    old_view = View(primary=0, backups=(1, 2))
    responses = [
        crashed(0, V1),
        crashed(1, V1),
        normal(2, V1, 5, view=old_view),
    ]
    assert form(responses, extended=True) is None


def test_extended_rule_both_backups_cover():
    """Both backups of a two-backup view together intersect every possible
    force quorum (b - s + 1 = 2)."""
    old_view = View(primary=0, backups=(1, 2))
    responses = [
        crashed(0, V1),
        normal(1, V1, 3, view=old_view),
        normal(2, V1, 5, view=old_view),
    ]
    # Majority-normal (condition 1) also fires at n=3; force the extended
    # path with a 5-cohort configuration where 2 normals are not a majority.
    result = form(responses, config_size=5, extended=True)
    assert result is not None
    assert result.primary == 2  # max viewstamp holder
    assert form(responses, config_size=5) is None  # paper rule stalls


def test_extended_rule_needs_membership_info():
    responses = [
        crashed(0, V2),
        normal(2, V2, 5, view=None),  # no cur_view in the acceptance
    ]
    assert form(responses, extended=True) is None


def test_extended_rule_end_to_end_recovery():
    """The E6-style scenario: the primary of a two-member view crashes
    while the third cohort is already down; with the extended rule the
    surviving (sole) backup re-forms the group once a majority is back."""
    from repro.config import ProtocolConfig as PC
    from tests.conftest import build_counter_system

    for extended in (False, True):
        rt, counter, _clients, driver = build_counter_system(
            seed=31, config=PC(extended_formation_rule=extended)
        )
        future = driver.submit("clients", "bump", 4)
        rt.run_for(300)
        assert future.result()[0] == "committed"
        rt.quiesce()
        counter.crash_cohort(0)          # v2 forms: primary 1, sole backup 2
        rt.run_for(800)
        assert counter.active_primary() is not None
        counter.crash_cohort(1)          # v2's primary gone; 2 alone
        rt.run_for(400)
        # Both crashed cohorts return with volatile loss.  Acceptances:
        # 0 crashed@v1, 1 crashed@v2, 2 normal@v2.  crash_viewid == v2 ==
        # normal_viewid and v2's primary (1) lost its state, so the paper's
        # conditions 1-3 all fail.  But cohort 2 was v2's *only* backup, so
        # every force in v2 reached it: the extended rule can prove that.
        counter.recover_cohort(0)
        counter.recover_cohort(1)
        rt.run_for(4000)
        primary = counter.active_primary()
        if extended:
            assert primary is not None and primary.mymid == 2
            assert primary.store.get("count").base == 4
        else:
            assert primary is None  # the paper's rule stalls here
