"""API hygiene: src/ must not call its own deprecated shims.

Mirrors the CI lint step so the failure shows up in a local test run too:
``Driver.submit`` / ``Driver.submit_keyed`` exist only for external
callers; everything under ``src/repro`` goes through ``Driver.call``.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
SHIM_CALL = re.compile(r"\.submit(_keyed)?\(")


def test_src_does_not_use_deprecated_submit_shims():
    hits = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "driver.py":
            continue  # the shims themselves live here
        for number, line in enumerate(path.read_text().splitlines(), 1):
            if SHIM_CALL.search(line):
                hits.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
    assert not hits, (
        "deprecated Driver.submit()/submit_keyed() used in src/ "
        "(use Driver.call()):\n" + "\n".join(hits)
    )
