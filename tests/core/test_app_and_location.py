"""Tests for the module programming model, location service, and runtime."""

import pytest

from repro import EmptyModule, ModuleSpec, Runtime, procedure, transaction_program
from repro.location.service import GroupNotFound, LocationService
from repro.net.messages import estimate_size


# -- ModuleSpec ------------------------------------------------------------


class Sample(ModuleSpec):
    def initial_objects(self):
        return {"x": 1}

    @procedure
    def get_x(self, ctx):
        value = yield ctx.read("x")
        return value

    def not_a_procedure(self):
        return None


def test_procedures_discovered():
    spec = Sample()
    assert set(spec.procedures()) == {"get_x"}


def test_procedure_named_rejects_non_procedures():
    spec = Sample()
    with pytest.raises(KeyError):
        spec.procedure_named("not_a_procedure")
    with pytest.raises(KeyError):
        spec.procedure_named("missing")


def test_register_program_and_lookup():
    spec = EmptyModule()

    @transaction_program
    def prog(txn):
        return "ok"
        yield

    spec.register_program("prog", prog)
    assert spec.transaction_program("prog") is prog
    with pytest.raises(KeyError):
        spec.transaction_program("nope")


def test_transaction_program_decorator_subactions_flag():
    @transaction_program(subactions=True)
    def nested(txn):
        yield

    @transaction_program
    def flat(txn):
        yield

    assert nested._vr_subactions is True
    assert flat._vr_subactions is False


def test_method_programs_found():
    class WithProgram(ModuleSpec):
        @transaction_program
        def do_it(self, txn):
            yield

    spec = WithProgram()
    assert spec.transaction_program("do_it")


# -- location service ------------------------------------------------------------


def test_location_register_lookup():
    location = LocationService()
    location.register("g", ((0, "g/0"), (1, "g/1")))
    assert location.lookup("g") == ((0, "g/0"), (1, "g/1"))
    assert "g" in location
    assert location.groups() == ("g",)


def test_location_duplicate_rejected():
    location = LocationService()
    location.register("g", ((0, "g/0"),))
    with pytest.raises(ValueError):
        location.register("g", ((0, "g/0"),))


def test_location_empty_configuration_rejected():
    location = LocationService()
    with pytest.raises(ValueError):
        location.register("g", ())


def test_location_unknown_raises():
    location = LocationService()
    with pytest.raises(GroupNotFound) as excinfo:
        location.lookup("missing")
    assert excinfo.value.groupid == "missing"
    # GroupNotFound subclasses KeyError, so legacy handlers still catch it.
    with pytest.raises(KeyError):
        location.lookup("missing")


def test_location_try_lookup_is_tolerant():
    location = LocationService()
    location.register("g", ((0, "g/0"),))
    assert location.try_lookup("g") == ((0, "g/0"),)
    assert location.try_lookup("missing") is None


def test_location_lookup_many_skips_unknown_groups():
    location = LocationService()
    location.register("a", ((0, "a/0"),))
    location.register("b", ((0, "b/0"), (1, "b/1")))
    found = location.lookup_many(["a", "missing", "b"])
    assert found == {"a": ((0, "a/0"),), "b": ((0, "b/0"), (1, "b/1"))}
    # Order of the result follows the request order, not insertion order.
    assert list(location.lookup_many(["b", "a"])) == ["b", "a"]


def test_location_lookup_many_strict_raises_on_first_miss():
    location = LocationService()
    location.register("a", ((0, "a/0"),))
    assert location.lookup_many(["a"], strict=True) == {"a": ((0, "a/0"),)}
    with pytest.raises(GroupNotFound) as excinfo:
        location.lookup_many(["a", "missing", "also-missing"], strict=True)
    assert excinfo.value.groupid == "missing"


def test_location_lookup_shapes_agree():
    """All lookup paths return the identical per-group configuration shape."""
    location = LocationService()
    configuration = ((0, "g/0"), (1, "g/1"))
    location.register("g", configuration)
    assert location.lookup("g") == configuration
    assert location.try_lookup("g") == configuration
    assert location.lookup_many(["g"])["g"] == configuration


def test_location_primary_address_tolerates_unknown():
    class FakeView:
        primary = 1

    location = LocationService()
    location.register("g", ((0, "g/0"), (1, "g/1")))
    assert location.primary_address("g", FakeView()) == "g/1"
    assert location.primary_address("missing", FakeView()) is None
    assert location.primary_address("g", None) is None


# -- runtime ------------------------------------------------------------------------


def test_runtime_duplicate_node_rejected():
    rt = Runtime(seed=0)
    rt.create_node("n1")
    with pytest.raises(ValueError):
        rt.create_node("n1")


def test_runtime_group_registers_location():
    rt = Runtime(seed=0)
    rt.create_group("g", EmptyModule(), n_cohorts=3)
    assert len(rt.location.lookup("g")) == 3


def test_runtime_empty_group_rejected():
    rt = Runtime(seed=0)
    with pytest.raises(ValueError):
        rt.create_group("g", EmptyModule(), n_cohorts=1, nodes=[])


def test_runtime_run_for_advances_clock():
    rt = Runtime(seed=0)
    rt.run_for(100.0)
    assert rt.sim.now == 100.0
    rt.run_for(50.0)
    assert rt.sim.now == 150.0


# -- size estimation -----------------------------------------------------------------


def test_estimate_size_primitives():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(7) == 8
    assert estimate_size(1.5) == 8
    assert estimate_size("abcd") == 4
    assert estimate_size(b"abc") == 3


def test_estimate_size_containers():
    assert estimate_size([1, 2]) == 4 + 16
    assert estimate_size({"a": 1}) == 4 + 1 + 8


def test_estimate_size_dataclass():
    import dataclasses

    @dataclasses.dataclass
    class Point:
        x: int
        y: int

    assert estimate_size(Point(1, 2)) == 16


def test_message_byte_size_includes_header():
    import dataclasses

    from repro.net.messages import Message

    @dataclasses.dataclass
    class Tiny(Message):
        n: int = 0

    assert Tiny().byte_size() == 32 + 8
    assert Tiny().msg_type == "Tiny"
