"""Tests for event-record shapes (paper's record vocabulary)."""

import dataclasses

import pytest

from repro.core.events import (
    Aborted,
    Committed,
    Committing,
    CompletedCall,
    Done,
    NewView,
    ObjectEffect,
    ViewEdit,
)
from repro.core.view import View
from repro.core.viewstamp import ViewId, Viewstamp
from repro.txn.ids import Aid, CallId

AID = Aid("g", ViewId(1, 0), 1)


def test_record_kinds_match_paper_names():
    assert CompletedCall(aid=AID, call_id=CallId(AID, 1), effects=()).kind == (
        "completed-call"
    )
    assert Committing(aid=AID, plist=()).kind == "committing"
    assert Committed(aid=AID).kind == "committed"
    assert Aborted(aid=AID).kind == "aborted"
    assert Done(aid=AID).kind == "done"
    assert ViewEdit(backups=(1,)).kind == "view-edit"


def test_records_are_frozen():
    record = Aborted(aid=AID)
    with pytest.raises(dataclasses.FrozenInstanceError):
        record.aid = Aid("h", ViewId(1, 0), 2)


def test_object_effect_carries_lock_and_writes():
    effect = ObjectEffect(uid="x", kind="write", writes=((0, 42),),
                          read_version=3)
    assert effect.uid == "x"
    assert effect.writes[-1][1] == 42
    assert effect.read_version == 3


def test_completed_call_effects_tuple():
    effects = (
        ObjectEffect(uid="x", kind="read", read_version=0),
        ObjectEffect(uid="y", kind="write", writes=((1, 9),)),
    )
    record = CompletedCall(aid=AID, call_id=CallId(AID, 1), effects=effects)
    assert len(record.effects) == 2


def test_newview_record_carries_full_state():
    record = NewView(
        view=View(primary=0, backups=(1, 2)),
        history_entries=(Viewstamp(ViewId(1, 0), 0),),
        objects={"x": (5, 1)},
        pending=(),
        outcomes={AID: "committed"},
        committing={},
    )
    assert record.kind == "newview"
    assert record.objects["x"] == (5, 1)
    assert record.outcomes[AID] == "committed"
