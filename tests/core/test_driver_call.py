"""Driver.call / CallResult: the unified submission surface.

``Driver.call`` replaces ``submit`` (groupid targets) and ``submit_keyed``
(sharded façade targets) with one routing entry point that resolves to a
typed :class:`CallResult`; the old names survive as deprecation shims.
"""

import pytest

from repro import CallFailed, CallResult
from repro.harness.common import build_kv_system
from tests.shard.util import build_sharded, keys_owned_by


# -- CallResult -------------------------------------------------------------


def test_call_result_status_properties():
    committed = CallResult("committed", 42)
    aborted = CallResult("aborted")
    unknown = CallResult("unknown")
    assert committed.committed and not committed.aborted and not committed.unknown
    assert aborted.aborted and not aborted.committed
    assert unknown.unknown and not unknown.committed
    assert committed.value == 42
    assert aborted.value is None


def test_call_result_unpacks_like_the_legacy_tuple():
    outcome, value = CallResult("committed", 7)
    assert (outcome, value) == ("committed", 7)


def test_call_result_unwrap():
    assert CallResult("committed", "ok").unwrap() == "ok"
    with pytest.raises(CallFailed) as excinfo:
        CallResult("aborted").unwrap()
    assert excinfo.value.result.status == "aborted"
    with pytest.raises(CallFailed):
        CallResult("unknown").unwrap()


# -- Driver.call routing ----------------------------------------------------


def _resolve(rt, future, time=2_000.0):
    rt.run_for(time)
    assert future.done
    return future.result()


def test_call_plain_groupid():
    rt, _kv, _clients, driver, spec = build_kv_system(seed=3, n_cohorts=3)
    result = _resolve(rt, driver.call("clients", "write", "kv", spec.key(0), 5))
    assert isinstance(result, CallResult)
    assert result.committed
    assert _resolve(rt, driver.call("clients", "read", "kv", spec.key(0))).unwrap() == 5


def test_call_routes_facade_instance_and_registered_name():
    rt, sharded, driver = build_sharded(seed=21, n_shards=2)
    (key,) = keys_owned_by(sharded, 0)
    assert _resolve(rt, driver.call(sharded, "write", key, 11)).committed
    # The façade's registered name is equivalent to the instance.
    assert _resolve(rt, driver.call("kv", "read", key)).unwrap() == 11


def test_call_rejects_nonpositive_timeout():
    rt, _kv, _clients, driver, _spec = build_kv_system(seed=3, n_cohorts=3)
    with pytest.raises(ValueError):
        driver.call("clients", "write", "kv", "k0", 1, timeout=0)


def test_submit_shim_warns_and_still_works():
    rt, _kv, _clients, driver, spec = build_kv_system(seed=3, n_cohorts=3)
    with pytest.warns(DeprecationWarning, match="Driver.submit"):
        future = driver.submit("clients", "write", "kv", spec.key(1), 9)
    assert _resolve(rt, future).committed


def test_submit_keyed_shim_warns_and_routes():
    rt, sharded, driver = build_sharded(seed=22, n_shards=2)
    (key,) = keys_owned_by(sharded, 1)
    with pytest.warns(DeprecationWarning, match="submit_keyed"):
        future = driver.submit_keyed(sharded, "write", key, 3)
    assert _resolve(rt, future).committed
    with pytest.warns(DeprecationWarning):
        by_name = driver.submit_keyed("kv", "read", key)
    assert _resolve(rt, by_name).unwrap() == 3
