"""Unit tests for view-change controller edge cases: preemption, stale
messages, re-acceptance, and concurrent managers end to end."""


from repro import Runtime
from repro.core import messages as m
from repro.core.cohort import Status
from repro.core.viewstamp import ViewId

from tests.conftest import CounterSpec


def build(seed=0):
    rt = Runtime(seed=seed)
    group = rt.create_group("g", CounterSpec(), n_cohorts=3)
    return rt, group


def test_invite_with_lower_viewid_ignored():
    rt, group = build()
    backup = group.cohort(1)
    backup.max_viewid = ViewId(5, 0)
    backup.view_change.on_invite(m.InviteMsg(viewid=ViewId(2, 0), manager_mid=0))
    assert backup.status is Status.ACTIVE  # untouched


def test_invite_with_higher_viewid_accepted():
    rt, group = build()
    backup = group.cohort(1)
    backup.view_change.on_invite(m.InviteMsg(viewid=ViewId(9, 0), manager_mid=0))
    assert backup.status is Status.UNDERLING
    assert backup.max_viewid == ViewId(9, 0)
    rt.run_for(10)
    accepts = rt.metrics.messages_sent.get("AcceptMsg", 0)
    assert accepts >= 1


def test_active_cohort_ignores_equal_viewid_invite():
    """A late re-invite for the view we already run must not unseat us."""
    rt, group = build()
    primary = group.cohort(0)
    primary.view_change.on_invite(
        m.InviteMsg(viewid=primary.cur_viewid, manager_mid=1)
    )
    assert primary.status is Status.ACTIVE


def test_manager_preempted_by_higher_invite():
    rt, group = build()
    cohort = group.cohort(1)
    cohort.view_change.become_manager()
    assert cohort.status is Status.VIEW_MANAGER
    proposed = cohort.max_viewid
    higher = ViewId(proposed.cnt + 5, 0)
    cohort.view_change.on_invite(m.InviteMsg(viewid=higher, manager_mid=0))
    assert cohort.status is Status.UNDERLING
    assert cohort.max_viewid == higher


def test_accept_for_old_proposal_ignored():
    rt, group = build()
    cohort = group.cohort(1)
    cohort.view_change.become_manager()
    stale = m.AcceptMsg(
        viewid=ViewId(1, 0),  # not our current proposal
        mid=2,
        crashed=False,
        viewstamp=cohort.history.latest,
        was_primary=False,
        crash_viewid=None,
    )
    cohort.view_change.on_accept(stale)
    assert 2 not in cohort.view_change._responses


def test_init_view_with_wrong_viewid_ignored():
    rt, group = build()
    cohort = group.cohort(1)
    from repro.core.view import View

    cohort.view_change.on_init_view(
        m.InitViewMsg(viewid=ViewId(99, 0), view=View(primary=1, backups=(0, 2)))
    )
    # max_viewid is still v1.0, so the message is stale-or-foreign: ignored.
    assert cohort.cur_viewid == ViewId(1, 0)


def test_become_manager_noop_when_down():
    rt, group = build()
    cohort = group.cohort(1)
    cohort.node.crash()
    cohort.view_change.become_manager()
    # A dead node cannot manage anything.
    assert not cohort.node.up


def test_concurrent_managers_converge_to_one_view():
    """Two cohorts start managing simultaneously; viewid ordering makes
    exactly one view win and every live cohort lands in it."""
    rt, group = build(seed=7)
    rt.run_for(50)
    group.cohort(0).node.crash()  # both backups notice around the same time
    # Force both to manage NOW, bypassing the ordered-manager damping.
    group.cohort(1).view_change.become_manager()
    group.cohort(2).view_change.become_manager()
    rt.run_for(2000)
    active = [c for c in group.active_cohorts()]
    assert len(active) == 2
    viewids = {c.cur_viewid for c in active}
    assert len(viewids) == 1
    primaries = [c for c in active if c.is_primary]
    assert len(primaries) == 1


def test_repeated_manager_rounds_escalate_viewid():
    """A manager alone in a partition keeps minting higher viewids."""
    rt, group = build(seed=8)
    rt.network.partition([{group.cohort(2).node.node_id}])
    lonely = group.cohort(2)
    lonely.view_change.become_manager()
    first = lonely.max_viewid
    rt.run_for(500)
    assert lonely.max_viewid > first
    assert lonely.status is Status.VIEW_MANAGER  # still trying, never formed


def test_view_change_during_view_change():
    """A second crash while the first change is in flight still converges."""
    rt, group = build(seed=9)
    rt.run_for(50)
    group.cohort(0).node.crash()
    rt.run_for(45)  # mid-change (detection done, formation racing)
    # Recover 0 immediately: now the old primary is back mid-change.
    group.cohort(0).node.recover()
    rt.run_for(3000)
    active = group.active_cohorts()
    assert len(active) == 3
    assert len({c.cur_viewid for c in active}) == 1
