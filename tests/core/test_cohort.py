"""Direct unit tests of cohort behaviour: dispatch, rejection, records."""

import pytest

from repro import Runtime
from repro.core import messages as m
from repro.core.cohort import Status
from repro.core.events import Aborted, Committing, Done, ViewEdit
from repro.core.view import View
from repro.core.viewstamp import ViewId, Viewstamp
from repro.txn.ids import Aid, CallId

from tests.conftest import CounterSpec


def build(n=3, seed=0):
    rt = Runtime(seed=seed)
    group = rt.create_group("g", CounterSpec(), n_cohorts=n)
    return rt, group


def aid_for(cohort, seq=1):
    return Aid("someclient", cohort.cur_viewid, seq)


def test_initial_bootstrap_state():
    rt, group = build()
    for mid, cohort in group.cohorts.items():
        assert cohort.status is Status.ACTIVE
        assert cohort.up_to_date
        assert cohort.cur_viewid == ViewId(1, 0)
        assert cohort.history.latest == Viewstamp(ViewId(1, 0), 0)
    assert group.cohort(0).is_primary
    assert not group.cohort(1).is_primary


def test_stable_identity_written_at_creation():
    _rt, group = build()
    cohort = group.cohort(1)
    assert cohort.stable.read("mymid") == 1
    assert cohort.stable.read("mygroupid") == "g"
    assert cohort.stable.read("cur_viewid") == ViewId(1, 0)


def test_backup_rejects_call_with_view_info():
    rt, group = build()
    backup = group.cohort(1)
    rejections = []

    class Probe:
        def __init__(self):
            node = rt.create_node("probe-node")
            from repro.sim.node import Actor

            class A(Actor):
                def handle_message(self, message, source):
                    rejections.append(message)

            self.actor = A(node, "probe")
            rt.network.register(self.actor)

    Probe()
    call = m.CallMsg(
        viewid=backup.cur_viewid,
        call_id=CallId(aid_for(backup), 1),
        aid=aid_for(backup),
        proc="get",
        args=(),
        reply_to="probe",
    )
    rt.network.send("probe", backup.address, call)
    rt.run_for(20)
    assert len(rejections) == 1
    assert isinstance(rejections[0], m.ViewChangedMsg)
    assert rejections[0].viewid == backup.cur_viewid
    assert rejections[0].view == backup.cur_view


def test_primary_rejects_stale_viewid_call():
    """A call carrying an old viewid is rejected with the current view."""
    rt, group = build()
    primary = group.cohort(0)
    replies = []
    from repro.sim.node import Actor

    class Sink(Actor):
        def handle_message(self, message, source):
            replies.append(message)

    sink = Sink(rt.create_node("sink-node"), "sink")
    rt.network.register(sink)
    stale = ViewId(0, 0)
    aid = aid_for(primary)
    rt.network.send(
        "sink",
        primary.address,
        m.CallMsg(
            viewid=stale,
            call_id=CallId(aid, 1),
            aid=aid,
            proc="get",
            args=(),
            reply_to="sink",
        ),
    )
    rt.run_for(20)
    assert len(replies) == 1
    assert isinstance(replies[0], m.ViewChangedMsg)
    assert replies[0].viewid == primary.cur_viewid


def test_view_probe_reports_active_view():
    rt, group = build()
    from repro.sim.node import Actor

    replies = []

    class Sink(Actor):
        def handle_message(self, message, source):
            replies.append(message)

    sink = Sink(rt.create_node("sink-node"), "sink")
    rt.network.register(sink)
    rt.network.send("sink", group.cohort(2).address, m.ViewProbeMsg(reply_to="sink"))
    rt.run_for(20)
    assert len(replies) == 1
    assert replies[0].active
    assert replies[0].viewid == ViewId(1, 0)
    assert replies[0].view == View(primary=0, backups=(1, 2))


def test_add_record_advances_history_and_timestamp():
    _rt, group = build()
    primary = group.cohort(0)
    vs1 = primary.add_record(Aborted(aid=aid_for(primary, 1)))
    vs2 = primary.add_record(Aborted(aid=aid_for(primary, 2)))
    assert vs1.ts == 1 and vs2.ts == 2
    assert primary.history.latest == vs2


def test_record_bookkeeping_committing_and_done():
    _rt, group = build()
    primary = group.cohort(0)
    aid = aid_for(primary)
    primary.add_record(Committing(aid=aid, plist=("g",), pset_pairs=()))
    assert aid in primary.committing
    primary.add_record(Done(aid=aid))
    assert aid not in primary.committing


def test_record_bookkeeping_aborted_clears_pending():
    _rt, group = build()
    primary = group.cohort(0)
    aid = aid_for(primary)
    from repro.core.events import CompletedCall

    record = CompletedCall(aid=aid, call_id=CallId(aid, 1), effects=())
    vs = primary.add_record(record)
    assert aid in primary.pending
    primary.add_record(Aborted(aid=aid))
    assert aid not in primary.pending
    assert primary.outcomes[aid] == "aborted"


def test_view_edit_record_updates_view():
    _rt, group = build()
    primary = group.cohort(0)
    primary.add_record(ViewEdit(backups=(1,)))
    assert primary.cur_view == View(primary=0, backups=(1,))


def test_backup_applies_records_in_order():
    rt, group = build()
    primary = group.cohort(0)
    aid = aid_for(primary)
    primary.add_record(Committing(aid=aid, plist=(), pset_pairs=()))
    primary.buffer.flush()
    rt.run_for(20)
    backup = group.cohort(1)
    assert backup.applied_ts == 1
    assert aid in backup.committing
    assert backup.history.latest.ts == 1


def test_backup_ignores_gap():
    rt, group = build()
    backup = group.cohort(1)
    # Deliver ts=2 before ts=1: it must not apply.
    record = Aborted(aid=aid_for(backup))
    backup._apply_buffer_records(((2, record),))
    assert backup.applied_ts == 0
    backup._apply_buffer_records(((1, record), (2, record)))
    assert backup.applied_ts == 2


def test_force_to_stable_combines_latencies():
    from repro.config import ProtocolConfig

    rt = Runtime(seed=0, config=ProtocolConfig(force_to_stable=True,
                                               stable_write_latency=30.0))
    group = rt.create_group("g", CounterSpec(), n_cohorts=3)
    primary = group.cohort(0)
    vs = primary.add_record(Aborted(aid=aid_for(primary)))
    force = primary.force_to(vs)
    rt.run_for(10)  # backups have acked by now (RTT ~2.2)...
    assert not force.done  # ...but the stable write hasn't finished
    rt.run_for(25)
    assert force.done


def test_crash_resets_volatile_state():
    rt, group = build()
    primary = group.cohort(0)
    primary.add_record(Aborted(aid=aid_for(primary)))
    primary.node.crash()
    assert not primary.up_to_date
    primary.node.recover()
    assert primary.cur_viewid == ViewId(1, 0)  # from stable storage
    assert primary.pending == {}
    assert primary.outcomes == {}
    assert primary.status is Status.VIEW_MANAGER or not primary.up_to_date


def test_gstate_snapshot_roundtrip_through_newview():
    """activate_as_primary's newview record reconstructs gstate exactly."""
    rt, group = build()
    rt.run_for(50)
    primary = group.cohort(0)
    primary.store.get("count").base = 7
    primary.store.get("count").version = 3
    group.cohort(2).node.crash()  # force a view change
    rt.run_for(800)
    new_primary = group.active_primary()
    assert new_primary is not None
    # Whoever leads now, the backups that joined must share the snapshot.
    rt.quiesce()
    for cohort in group.active_cohorts():
        assert cohort.store.get("count").version >= 0  # restored, no crash


def test_peer_address_lookup():
    _rt, group = build()
    cohort = group.cohort(0)
    assert cohort.peer_address(2) == "g/2"
    with pytest.raises(KeyError):
        cohort.peer_address(99)
