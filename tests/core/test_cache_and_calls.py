"""Tests for the client cache and remote-call machinery."""


from repro.core.cache import ClientCache
from repro.core.calls import CallAborted, RemoteCaller
from repro.core.messages import (
    CallFailedMsg,
    CallMsg,
    ReplyMsg,
    ViewChangedMsg,
    ViewProbeMsg,
    ViewProbeReplyMsg,
)
from repro.core.view import View
from repro.core.viewstamp import ViewId
from repro.config import ProtocolConfig
from repro.sim.kernel import Simulator
from repro.txn.ids import Aid, CallId

V1 = ViewId(1, 0)
V2 = ViewId(2, 1)
VIEW1 = View(primary=0, backups=(1, 2))
VIEW2 = View(primary=1, backups=(0, 2))


# -- cache --------------------------------------------------------------------


def test_cache_update_and_get():
    cache = ClientCache()
    assert cache.get("g") is None
    assert cache.update("g", V1, VIEW1, "g/0")
    entry = cache.get("g")
    assert entry.viewid == V1
    assert entry.primary_address == "g/0"


def test_cache_only_moves_forward():
    cache = ClientCache()
    cache.update("g", V2, VIEW2, "g/1")
    assert not cache.update("g", V1, VIEW1, "g/0")
    assert cache.get("g").viewid == V2


def test_cache_rejects_partial_updates():
    cache = ClientCache()
    assert not cache.update("g", None, VIEW1, "g/0")
    assert not cache.update("g", V1, None, "g/0")
    assert not cache.update("g", V1, VIEW1, None)
    assert cache.get("g") is None


def test_cache_invalidate():
    cache = ClientCache()
    cache.update("g", V1, VIEW1, "g/0")
    cache.invalidate("g")
    assert cache.get("g") is None
    assert "g" not in cache


# -- RemoteCaller against a scripted host ---------------------------------------


class FakeHost:
    """Implements the RemoteCaller host contract with a message log."""

    def __init__(self):
        self.sim = Simulator()
        self.address = "client"
        self.cache = ClientCache()
        self.config = ProtocolConfig(call_timeout=10.0, call_probes=2)
        self.sent = []
        self.members = {"g": ((0, "g/0"), (1, "g/1"), (2, "g/2"))}

    def send(self, destination, message):
        self.sent.append((destination, message))

    def set_timer(self, delay, fn, *args):
        return self.sim.schedule(delay, fn, *args)

    def locate(self, groupid):
        if groupid not in self.members:
            raise KeyError(groupid)
        return self.members[groupid]


def make_call(host, caller, seq=1):
    aid = Aid("c", V1, 1)
    call_id = CallId(aid, seq)
    future = caller.call(aid, "g", "proc", ("x",), call_id)
    return call_id, future


def test_call_uses_cache_and_sends():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    _call_id, _future = make_call(host, caller)
    destination, message = host.sent[0]
    assert destination == "g/0"
    assert isinstance(message, CallMsg)
    assert message.viewid == V1


def test_call_probes_when_cache_empty():
    host = FakeHost()
    caller = RemoteCaller(host)
    make_call(host, caller)
    probes = [d for d, m_ in host.sent if isinstance(m_, ViewProbeMsg)]
    assert set(probes) == {"g/0", "g/1", "g/2"}


def test_probe_reply_triggers_send():
    host = FakeHost()
    caller = RemoteCaller(host)
    _call_id, future = make_call(host, caller)
    caller.on_probe_reply(
        ViewProbeReplyMsg(groupid="g", viewid=V1, view=VIEW1, active=True)
    )
    calls = [(d, m_) for d, m_ in host.sent if isinstance(m_, CallMsg)]
    assert calls and calls[0][0] == "g/0"


def test_reply_resolves_future():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    call_id, future = make_call(host, caller)
    caller.on_reply(ReplyMsg(call_id=call_id, result=42, pset_pairs=(), piggyback=None))
    assert future.result()[0] == 42


def test_timeout_probes_same_primary_then_fails():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    call_id, future = make_call(host, caller)
    host.sim.run(until=50.0)
    call_sends = [d for d, m_ in host.sent if isinstance(m_, CallMsg)]
    assert call_sends == ["g/0", "g/0"]  # original + one probe (call_probes=2)
    assert future.done
    assert isinstance(future.exception(), CallAborted)
    assert "no reply" in future.exception().reason
    # The failure refreshed discovery: probes went out for next time.
    assert any(isinstance(m_, ViewProbeMsg) for _d, m_ in host.sent)
    assert host.cache.get("g") is None


def test_view_changed_rejection_switches_primary():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    call_id, future = make_call(host, caller)
    caller.on_view_changed(
        ViewChangedMsg(call_id=call_id, viewid=V2, view=VIEW2, groupid="g")
    )
    destinations = [d for d, m_ in host.sent if isinstance(m_, CallMsg)]
    assert destinations[-1] == "g/1"  # the new primary
    assert host.cache.get("g").viewid == V2


def test_call_failed_propagates():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    call_id, future = make_call(host, caller)
    caller.on_call_failed(CallFailedMsg(call_id=call_id, reason="kaput"))
    assert isinstance(future.exception(), CallAborted)


def test_abandon_all_fails_outstanding():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    _call_id, f1 = make_call(host, caller, seq=1)
    _call_id2, f2 = make_call(host, caller, seq=2)
    caller.abandon_all("leaving active")
    assert f1.failed and f2.failed


def test_unknown_group_fails_fast():
    host = FakeHost()
    caller = RemoteCaller(host)
    aid = Aid("c", V1, 1)
    future = caller.call(aid, "nowhere", "proc", (), CallId(aid, 1))
    host.sim.run(until=200.0)
    assert future.failed


def test_late_reply_ignored():
    host = FakeHost()
    host.cache.update("g", V1, VIEW1, "g/0")
    caller = RemoteCaller(host)
    call_id, future = make_call(host, caller)
    host.sim.run(until=50.0)  # times out and fails
    assert future.failed
    # A very late reply must not blow up or double-resolve.
    caller.on_reply(ReplyMsg(call_id=call_id, result=1, pset_pairs=(), piggyback=None))
