"""Disk fault modes on StableStore: fail, slow, torn, and healing."""


import pytest

from repro.sim.kernel import Simulator
from repro.sim.node import Node
from repro.storage.stable import DiskFault, StableStore


def build(latency=5.0):
    sim = Simulator()
    node = Node(sim, "n1")
    return sim, node, StableStore(node, write_latency=latency)


def test_fail_mode_errors_after_latency_and_persists_nothing():
    sim, _node, store = build(latency=5.0)
    store.write_immediate("key", "old")
    store.inject_fail()
    future = store.write("key", "new")
    sim.run(until=4.9)
    assert not future.done
    sim.run(until=5.0)
    assert future.done
    assert isinstance(future.exception(), DiskFault)
    # A dead write head, not a lost disk: reads still serve the old page.
    assert store.read("key") == "old"


def test_fail_mode_exception_names_node_and_key():
    sim, _node, store = build()
    store.inject_fail()
    future = store.write("cur_viewid", 7)
    sim.run()
    assert future.exception().node_id == "n1"
    assert future.exception().key == "cur_viewid"


def test_slow_mode_multiplies_latency():
    sim, _node, store = build(latency=5.0)
    store.inject_slow(4.0)
    future = store.write("key", "value")
    sim.run(until=19.9)
    assert not future.done
    sim.run(until=20.0)
    assert future.done
    assert future.exception() is None
    assert store.read("key") == "value"


def test_slow_factor_below_one_rejected():
    _sim, _node, store = build()
    with pytest.raises(ValueError):
        store.inject_slow(0.5)


def test_torn_write_is_durable_but_unacknowledged():
    sim, node, store = build(latency=6.0)
    store.arm_torn()
    future = store.write("key", "value")
    sim.run()
    # The page landed mid-latency, then the node died before the
    # completion callback: durable but never acknowledged.
    assert not future.done
    assert not node.up
    assert store.read("key") == "value"


def test_torn_is_one_shot():
    sim, node, store = build()
    store.arm_torn()
    store.write("key", "first")
    sim.run()
    node.recover()
    future = store.write("key", "second")
    sim.run()
    assert future.done and future.exception() is None
    assert store.read("key") == "second"


def test_heal_faults_clears_every_mode():
    sim, _node, store = build()
    store.inject_fail()
    store.inject_slow(8.0)
    store.arm_torn()
    assert store.faults_active() == ["fail", "slow x8", "torn-armed"]
    store.heal_faults()
    assert store.faults_active() == []
    future = store.write("key", "value")
    sim.run(until=5.0)
    assert future.done and future.exception() is None


def test_write_immediate_ignores_injected_faults():
    """The UPS-backed-NVRAM path is deliberately outside the fault model."""
    _sim, _node, store = build()
    store.inject_fail()
    store.write_immediate("key", "value")
    assert store.read("key") == "value"
