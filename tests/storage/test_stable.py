"""Tests for the stable storage model."""


from repro.sim.kernel import Simulator
from repro.sim.node import Node
from repro.storage.stable import StableStore


def build(latency=5.0):
    sim = Simulator()
    node = Node(sim, "n1")
    return sim, node, StableStore(node, write_latency=latency)


def test_write_completes_after_latency():
    sim, _node, store = build(latency=5.0)
    future = store.write("key", "value")
    assert not future.done
    sim.run(until=4.9)
    assert not future.done
    sim.run(until=5.0)
    assert future.done
    assert store.read("key") == "value"


def test_value_not_durable_before_completion():
    sim, _node, store = build()
    store.write("key", "value")
    sim.run(until=2.0)
    assert store.read("key") is None


def test_crash_mid_write_loses_value():
    sim, node, store = build(latency=5.0)
    store.write("key", "value")
    sim.schedule(2.0, node.crash)
    sim.run()
    assert store.read("key") is None


def test_values_survive_crash():
    sim, node, store = build()
    store.write("key", "value")
    sim.run()
    node.crash()
    node.recover()
    assert store.read("key") == "value"


def test_write_immediate_is_synchronous():
    _sim, _node, store = build()
    store.write_immediate("key", [1, 2, 3])
    assert store.read("key") == [1, 2, 3]


def test_write_snapshots_value():
    """Mutating the original after write must not change what's on disk."""
    sim, _node, store = build()
    value = {"a": 1}
    store.write("key", value)
    value["a"] = 999
    sim.run()
    assert store.read("key") == {"a": 1}


def test_read_returns_copy():
    sim, _node, store = build()
    store.write_immediate("key", {"a": 1})
    first = store.read("key")
    first["a"] = 999
    assert store.read("key") == {"a": 1}


def test_read_default():
    _sim, _node, store = build()
    assert store.read("missing") is None
    assert store.read("missing", default=42) == 42


def test_contains():
    _sim, _node, store = build()
    assert "key" not in store
    store.write_immediate("key", 1)
    assert "key" in store


def test_overwrite_keeps_latest():
    sim, _node, store = build(latency=1.0)
    store.write("key", "first")
    sim.run()
    store.write("key", "second")
    sim.run()
    assert store.read("key") == "second"
