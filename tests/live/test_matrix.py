"""The nemesis x spec matrix: cells, the unhealable cell, and the CLI."""

import pytest

from repro.live import SCHEDULES, run_cell, run_matrix
from repro.live.cli import main as live_main


def test_schedule_catalog_has_exactly_one_unhealable_cell():
    unhealable = [s for s in SCHEDULES.values() if s.expect_violation]
    assert [s.name for s in unhealable] == ["majority_partition"]


def test_healable_cell_passes_and_commits_after_heal():
    result = run_cell(SCHEDULES["lossy"], seed=0, duration=1500.0)
    assert result.ok, result.detail
    assert result.violations == 0
    assert result.committed > 0
    assert result.polls > 0
    assert result.report is None
    assert "lossy" in result.render()


def test_disk_fault_cell_passes():
    result = run_cell(SCHEDULES["disk_fault"], seed=0, duration=1500.0)
    assert result.ok, result.detail
    assert result.faults_injected > 0


def test_unhealable_cell_requires_a_quorum_naming_violation():
    result = run_cell(SCHEDULES["majority_partition"], seed=0, duration=1200.0)
    assert result.ok, result.detail
    assert result.violations > 0
    assert result.report is not None
    assert "no partition block holds a majority" in result.report.reason
    assert result.committed == 0


def test_run_matrix_rejects_unknown_schedules():
    with pytest.raises(KeyError):
        run_matrix(schedules=["lossy", "nope"])


def test_cli_runs_a_selected_cell(capsys):
    exit_code = live_main(
        ["matrix", "--schedule", "lossy", "--duration", "1500", "--seed", "0"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "lossy" in out
    assert "1/1 cells ok" in out


def test_cli_lists_specs_and_schedules(capsys):
    assert live_main(["specs"]) == 0
    assert live_main(["schedules"]) == 0
    out = capsys.readouterr().out
    assert "eventually_single_primary" in out
    assert "majority_partition" in out


def test_cli_check_docs_passes_on_the_shipped_doc():
    assert live_main(["check-docs", "docs/LIVENESS.md"]) == 0


def test_cli_check_docs_fails_on_incomplete_doc(tmp_path, capsys):
    doc = tmp_path / "LIVENESS.md"
    doc.write_text("eventually_single_primary only\n")
    assert live_main(["check-docs", str(doc)]) == 1
