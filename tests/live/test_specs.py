"""Liveness specs and the checker: windows, relaxation, stall reports."""

import pytest

from repro.live import (
    EventuallyCommits,
    EventuallySinglePrimary,
    LivenessViolation,
    NoLivelock,
    ViewChangeConverges,
    spec_catalog,
)
from repro.harness.common import build_kv_system


def _group_node_ids(kv):
    return [node.node_id for node in kv.nodes()]


# -- constructor validation ---------------------------------------------------


def test_spec_constructors_validate_arguments():
    with pytest.raises(ValueError):
        EventuallySinglePrimary("kv", within=0.0)
    with pytest.raises(ValueError):
        EventuallyCommits(0, within=100.0)
    with pytest.raises(ValueError):
        NoLivelock("kv", max_retries=0, within=100.0)


def test_spec_catalog_shapes():
    rt, _kv, _clients, _driver, _spec = build_kv_system(seed=90)
    bare = spec_catalog("kv", rt.config)
    names = [spec.name for spec in bare]
    assert names == [
        "eventually_single_primary", "view_change_converges", "no_livelock",
    ]
    with_commits = spec_catalog("kv", rt.config, commits=2)
    assert [spec.name for spec in with_commits][-1] == "eventually_commits"
    # The throughput window must cover a fully backed-off client retry.
    assert with_commits[-1].within >= bare[0].within
    strict = spec_catalog("kv", rt.config, strict=True)
    assert all(not spec.relax_under_disruption for spec in strict)


# -- checker on a healthy system ----------------------------------------------


def test_healthy_system_satisfies_the_catalog():
    rt, _kv, _clients, driver, spec = build_kv_system(seed=91)
    checker = rt.arm_liveness(spec_catalog("kv", rt.config, commits=1))
    # Keep trickling writes: eventually_commits is only meaningful while
    # a workload runs (an idle-but-healthy system would trip it).
    futures = []
    for round_start in range(0, 3000, 500):
        futures.append(
            driver.call(
                "clients", "write", "kv", spec.key(len(futures)), round_start
            )
        )
        rt.run_for(500)
    assert all(future.done for future in futures)
    assert checker.polls > 0
    assert checker.violations == []


def test_arm_liveness_twice_is_an_error():
    rt, _kv, _clients, _driver, _spec = build_kv_system(seed=92)
    rt.arm_liveness(spec_catalog("kv", rt.config))
    with pytest.raises(RuntimeError):
        rt.arm_liveness(spec_catalog("kv", rt.config))


def test_disarm_stops_polling():
    rt, _kv, _clients, _driver, _spec = build_kv_system(seed=93)
    checker = rt.arm_liveness(spec_catalog("kv", rt.config))
    rt.run_for(200)
    polls = checker.polls
    assert polls > 0
    checker.disarm()
    rt.run_for(500)
    assert checker.polls == polls


# -- violations under unhealable disruption -----------------------------------


def test_strict_specs_raise_with_a_quorum_naming_report():
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=94)
    rt.run_for(200)
    node_ids = _group_node_ids(kv)
    rt.faults.partition(*[{node_id} for node_id in node_ids])
    rt.arm_liveness(
        spec_catalog("kv", rt.config, within_scale=0.5, strict=True)
    )
    with pytest.raises(LivenessViolation) as excinfo:
        rt.run_for(5000)
    report = excinfo.value.report
    assert "no partition block holds a majority" in report.reason
    for node_id in node_ids:
        assert node_id in report.reason
    # Diagnosis payload: per-node status and the network snapshot.
    assert {entry["node_id"] for entry in report.nodes} >= set(node_ids)
    assert report.network["partition_blocks"] == [[n] for n in node_ids]
    rendered = report.render()
    assert "eventually_single_primary" in rendered


def test_collect_mode_accumulates_instead_of_raising():
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=95)
    rt.run_for(200)
    node_ids = _group_node_ids(kv)
    rt.faults.partition(*[{node_id} for node_id in node_ids])
    checker = rt.arm_liveness(
        spec_catalog("kv", rt.config, within_scale=0.5, strict=True),
        raise_on_violation=False,
    )
    rt.run_for(5000)
    assert len(checker.violations) >= 1


def test_relaxed_specs_pause_while_disruption_is_active():
    """The same permanent partition that fires strict specs must never
    fire relaxed ones: disrupted time does not charge the window."""
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=96)
    rt.run_for(200)
    node_ids = _group_node_ids(kv)
    rt.faults.partition(*[{node_id} for node_id in node_ids])
    checker = rt.arm_liveness(spec_catalog("kv", rt.config))
    rt.run_for(8000)  # many windows worth of wall-clock, all disrupted
    assert checker.violations == []
    # Heal, and the group must now deliver within the window -- i.e. the
    # relaxed specs are paused, not dead.
    rt.faults.heal_all()
    rt.run_for(3000)
    assert checker.violations == []
    assert kv.active_primary() is not None


def test_down_node_counts_as_disruption():
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=97)
    rt.run_for(200)
    checker = rt.arm_liveness(spec_catalog("kv", rt.config))
    assert not checker.disrupted()
    rt.faults.crash(_group_node_ids(kv)[0])
    assert checker.disrupted()
    rt.faults.heal_all()
    assert not checker.disrupted()


def test_disk_fault_counts_as_disruption():
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=98)
    checker = rt.arm_liveness(spec_catalog("kv", rt.config))
    assert not checker.disrupted()
    rt.faults.disk_slow(_group_node_ids(kv)[0], factor=4.0)
    assert checker.disrupted()
    rt.faults.heal_all()
    assert not checker.disrupted()


# -- individual spec behaviour ------------------------------------------------


def test_eventually_commits_rebases_after_each_window():
    rt, _kv, _clients, driver, spec = build_kv_system(seed=99)
    commits = EventuallyCommits(1, within=500.0)
    commits.bind(rt)
    assert not commits.satisfied()
    future = driver.call("clients", "write", "kv", spec.key(0), 1)
    rt.run_for(400)
    assert future.done
    assert commits.satisfied()  # consumed the fresh commit, re-based
    assert not commits.satisfied()  # next window needs a new commit


def test_view_change_converges_tracks_latest_start():
    rt, kv, _clients, _driver, _spec = build_kv_system(seed=100)
    rt.run_for(300)
    converges = ViewChangeConverges("kv", within=500.0)
    converges.bind(rt)
    assert converges.satisfied()  # bootstrap view change has completed
    rt.faults.crash_primary("kv", recover_after=150.0)
    rt.run_for(2000)
    assert converges.satisfied()  # the replacement view completed too
