"""Monitor tests: each invariant trips on a synthetic violation, stays
quiet on legitimate sequences, and the flagship acceptance test -- a
deliberately broken cohort activating a second primary in one viewid --
is caught online with a causal slice of at most 50 events."""

import pytest

from repro import View
from repro.config import TraceConfig
from repro.harness.common import build_kv_system, run_kv_batch
from repro.sim.kernel import Simulator
from repro.trace import InvariantViolation, Tracer, build_monitors


def make_tracer(*names):
    tracer = Tracer(Simulator(seed=1), TraceConfig())
    tracer.install_monitors(build_monitors(names))
    return tracer


# -- viewstamp_monotonic ---------------------------------------------------


def test_viewstamp_monotonic_trips_on_regression():
    tracer = make_tracer("viewstamp_monotonic")
    tracer.emit("record_added", node="n0", group="kv", mid=0,
                viewid="v1.0", ts=5, rtype="Committed", role="primary")
    with pytest.raises(InvariantViolation) as caught:
        tracer.emit("record_added", node="n0", group="kv", mid=0,
                    viewid="v1.0", ts=5, rtype="Committed", role="primary")
    assert caught.value.monitor == "viewstamp_monotonic"


def test_viewstamp_monotonic_resets_on_newview_reinstall():
    # a recovered backup re-installs the newview and re-applies from ts=2
    tracer = make_tracer("viewstamp_monotonic")
    tracer.emit("record_added", node="n0", group="kv", mid=0,
                viewid="v2.1", ts=9, rtype="Committed", role="backup")
    tracer.emit("newview_installed", node="n0", group="kv", mid=0,
                viewid="v2.1")
    tracer.emit("record_added", node="n0", group="kv", mid=0,
                viewid="v2.1", ts=2, rtype="Committed", role="backup")


def test_viewstamp_monotonic_keys_are_independent():
    tracer = make_tracer("viewstamp_monotonic")
    tracer.emit("record_added", node="n0", group="kv", mid=0,
                viewid="v1.0", ts=5, rtype="Committed", role="primary")
    # other cohort, other view: their own watermarks
    tracer.emit("record_added", node="n1", group="kv", mid=1,
                viewid="v1.0", ts=2, rtype="Committed", role="backup")
    tracer.emit("record_added", node="n0", group="kv", mid=0,
                viewid="v2.0", ts=1, rtype="NewView", role="primary")


# -- single_primary --------------------------------------------------------


def test_single_primary_trips_on_second_activation():
    tracer = make_tracer("single_primary")
    tracer.emit("primary_activated", node="n0", group="kv", mid=0,
                viewid="v3.1", members=[0, 1, 2])
    tracer.emit("primary_activated", node="n0", group="kv", mid=0,
                viewid="v3.1", members=[0, 1, 2])  # same cohort: allowed
    with pytest.raises(InvariantViolation) as caught:
        tracer.emit("primary_activated", node="n2", group="kv", mid=2,
                    viewid="v3.1", members=[0, 1, 2])
    violation = caught.value
    assert violation.monitor == "single_primary"
    assert "two primaries" in violation.message
    assert len(violation.causal_slice) <= 50


# -- quorum_intersection ---------------------------------------------------


def test_quorum_intersection_trips_on_minority_view():
    tracer = make_tracer("quorum_intersection")
    with pytest.raises(InvariantViolation) as caught:
        tracer.emit("view_formed", node="n0", group="kv", mid=0,
                    viewid="v2.0", primary=0, members=[0], config_size=3)
    assert caught.value.monitor == "quorum_intersection"


def test_quorum_intersection_trips_on_disjoint_views():
    tracer = make_tracer("quorum_intersection")
    tracer.emit("view_formed", node="n0", group="kv", mid=0,
                viewid="v1.0", primary=0, members=[0, 1], config_size=3)
    with pytest.raises(InvariantViolation) as caught:
        tracer.emit("view_formed", node="n2", group="kv", mid=2,
                    viewid="v2.2", primary=2, members=[2, 3], config_size=3)
    assert "does not intersect" in caught.value.message


def test_quorum_intersection_allows_overlapping_majorities():
    tracer = make_tracer("quorum_intersection")
    tracer.emit("view_formed", node="n0", group="kv", mid=0,
                viewid="v1.0", primary=0, members=[0, 1], config_size=3)
    tracer.emit("view_formed", node="n1", group="kv", mid=1,
                viewid="v2.1", primary=1, members=[1, 2], config_size=3)


# -- commit_quorum ---------------------------------------------------------


def test_commit_quorum_trips_without_backup_acks():
    tracer = make_tracer("commit_quorum")
    with pytest.raises(InvariantViolation) as caught:
        tracer.emit("commit_point", node="n0", group="kv", aid="a1",
                    viewid="v1.0", force_ts=7,
                    acked={"1": 3, "2": 0}, config_size=3)
    assert caught.value.monitor == "commit_quorum"


def test_commit_quorum_satisfied_by_sub_majority():
    tracer = make_tracer("commit_quorum")
    tracer.emit("commit_point", node="n0", group="kv", aid="a1",
                viewid="v1.0", force_ts=7,
                acked={"1": 7, "2": 0}, config_size=3)


# -- phantom_delivery ------------------------------------------------------


def test_phantom_delivery_trips_on_unsent_message():
    tracer = make_tracer("phantom_delivery")
    tracer.emit("msg_deliver", node="n1", msg_id=1, src="a", dst="b",
                type="CallMsg", sent=True)
    with pytest.raises(InvariantViolation) as caught:
        tracer.emit("msg_deliver", node="n1", msg_id=99, src="a", dst="b",
                    type="CallMsg", sent=False)
    assert caught.value.monitor == "phantom_delivery"


# -- the acceptance-criterion integration test -----------------------------


def test_broken_cohort_two_primaries_caught_with_small_slice():
    """Deliberately violate the protocol: force a backup to activate as
    primary of the view the real primary already owns.  The online
    single_primary monitor must catch it at the activation instant, and
    the violation's causal slice must be a readable <=50-event story."""
    rt, kv, _clients, driver, spec = build_kv_system(
        seed=9, n_cohorts=3, trace=TraceConfig(monitors=("single_primary",))
    )
    run_kv_batch(rt, driver, spec, 10, read_fraction=0.5, concurrency=2)
    rt.run_for(300)
    primary = kv.active_primary()
    assert primary is not None
    backup_mid = next(iter(primary.cur_view.backups))
    backup = kv.cohorts[backup_mid]
    rogue_view = View(
        primary=backup_mid,
        backups=tuple(sorted(primary.cur_view.members - {backup_mid})),
    )
    with pytest.raises(InvariantViolation) as caught:
        backup.activate_as_primary(primary.cur_viewid, rogue_view)
    violation = caught.value
    assert violation.monitor == "single_primary"
    assert violation.event.kind == "primary_activated"
    assert violation.event.data["mid"] == backup_mid
    assert 1 <= len(violation.causal_slice) <= 50
    # the slice is the minimal explanation: it contains the offending event
    assert violation.event.eid in {e.eid for e in violation.causal_slice}


def test_healthy_chaos_run_raises_no_violations():
    from repro.harness.soak import run_soak

    stats = run_soak(seed=11, duration=3000, verbose=False,
                     trace=TraceConfig(monitors="all"))
    assert stats["trace_events"] > 0
