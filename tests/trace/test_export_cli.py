"""Exports and the ``python -m repro.trace`` CLI."""

import json

from repro.config import TraceConfig
from repro.harness.common import build_kv_system, run_kv_batch
from repro.trace.cli import main as cli_main


def _traced_run(seed=21, txns=25):
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=3, trace=TraceConfig(monitors="all")
    )
    run_kv_batch(rt, driver, spec, txns, read_fraction=0.5, concurrency=2)
    rt.quiesce()
    return rt


def test_chrome_export_structure(tmp_path):
    rt = _traced_run()
    path = tmp_path / "run.json"
    rt.tracer.export_chrome(str(path))
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    entries = doc["traceEvents"]
    phases = {entry["ph"] for entry in entries}
    # thread-name metadata, instants, and send->deliver flow arrows
    assert {"M", "i", "s", "f"} <= phases
    names = {entry["args"]["name"] for entry in entries if entry["ph"] == "M"}
    assert any(name.startswith("kv") for name in names)
    flows_out = [entry for entry in entries if entry["ph"] == "s"]
    flows_in = [entry for entry in entries if entry["ph"] == "f"]
    assert flows_out and flows_in
    assert {entry["id"] for entry in flows_in} <= {
        entry["id"] for entry in flows_out
    }


def test_maybe_export_picks_format_by_extension(tmp_path):
    chrome_path = str(tmp_path / "run.json")
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=21, n_cohorts=3,
        trace=TraceConfig(monitors="all", export_path=chrome_path),
    )
    run_kv_batch(rt, driver, spec, 10, read_fraction=0.5, concurrency=2)
    assert rt.tracer.maybe_export() == chrome_path
    with open(chrome_path, "r", encoding="utf-8") as handle:
        assert "traceEvents" in json.load(handle)


def test_cli_timeline_and_chain(tmp_path, capsys):
    rt = _traced_run()
    jsonl = str(tmp_path / "run.jsonl")
    rt.tracer.export_jsonl(jsonl)

    assert cli_main(["timeline", jsonl, "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "==" in out and "events" in out

    some_deliver = next(
        event for event in rt.tracer.events()
        if event.kind == "msg_deliver" and event.parents
    )
    assert cli_main(["chain", jsonl, str(some_deliver.eid)]) == 0
    out = capsys.readouterr().out
    assert f"-> #{some_deliver.eid}" in out
    assert "msg_send" in out  # the chain reaches the send

    assert cli_main(["chain", jsonl, "999999999"]) == 1
    assert "not in" in capsys.readouterr().err


def test_cli_timeline_kind_filter_and_missing_node(tmp_path, capsys):
    rt = _traced_run()
    jsonl = str(tmp_path / "run.jsonl")
    rt.tracer.export_jsonl(jsonl)
    assert cli_main(["timeline", jsonl, "--kind", "txn_submit"]) == 0
    out = capsys.readouterr().out
    assert "txn_submit" in out
    assert "msg_send" not in out
    assert cli_main(["timeline", jsonl, "--node", "nope"]) == 1


def test_cli_chrome_conversion(tmp_path, capsys):
    rt = _traced_run()
    jsonl = str(tmp_path / "run.jsonl")
    rt.tracer.export_jsonl(jsonl)
    out_path = str(tmp_path / "out.json")
    assert cli_main(["chrome", jsonl, "--out", out_path]) == 0
    with open(out_path, "r", encoding="utf-8") as handle:
        assert json.load(handle)["traceEvents"]


def test_cli_monitors_catalog(capsys):
    assert cli_main(["monitors"]) == 0
    out = capsys.readouterr().out
    for name in ("viewstamp_monotonic", "single_primary",
                 "quorum_intersection", "commit_quorum", "phantom_delivery"):
        assert name in out


def test_cli_check_docs(tmp_path, capsys):
    assert cli_main(["check-docs", "docs/TRACING.md"]) == 0
    capsys.readouterr()
    incomplete = tmp_path / "thin.md"
    incomplete.write_text("only msg_send is here\n")
    assert cli_main(["check-docs", str(incomplete)]) == 1
    assert "missing documentation" in capsys.readouterr().err
    assert cli_main(["check-docs", str(tmp_path / "absent.md")]) == 2
