"""Tracer unit tests: Lamport clocks, causal context, ring eviction."""

import pytest

from repro.config import TraceConfig
from repro.sim.kernel import Simulator
from repro.trace import EVENT_KINDS, Tracer


def make_tracer(ring_size=65_536):
    sim = Simulator(seed=1)
    return Tracer(sim, TraceConfig(ring_size=ring_size))


def test_eids_are_sequential_and_lamport_advances_per_node():
    tracer = make_tracer()
    first = tracer.emit("fault", node="n1", action="x")
    second = tracer.emit("fault", node="n1", action="y")
    third = tracer.emit("fault", node="n2", action="z")
    assert (first, second, third) == (1, 2, 3)
    assert tracer.get(first).lamport == 1
    assert tracer.get(second).lamport == 2
    # independent node: its clock starts fresh
    assert tracer.get(third).lamport == 1


def test_explicit_parent_advances_lamport_past_it():
    tracer = make_tracer()
    parent = tracer.emit("fault", node="n1")
    tracer.emit("fault", node="n1")
    tracer.emit("fault", node="n1")
    child = tracer.emit("fault", node="n2", parents=(3,))
    # n2's clock (0) must jump past the parent's lamport (3)
    assert tracer.get(child).lamport == 4
    assert tracer.get(parent).lamport == 1


def test_context_stack_becomes_implicit_parent():
    tracer = make_tracer()
    outer = tracer.emit("msg_deliver", node="n1", msg_id=1, sent=True)
    tracer.push(outer)
    try:
        inner = tracer.emit("record_added", node="n1")
    finally:
        tracer.pop()
    after = tracer.emit("fault", node="n1")
    assert outer in tracer.get(inner).parents
    assert outer not in tracer.get(after).parents
    assert tracer.current() is None


def test_ring_eviction_bounds_memory_and_counts():
    tracer = make_tracer(ring_size=10)
    for index in range(25):
        tracer.emit("fault", node="n1", index=index)
    assert tracer.events_emitted == 25
    assert tracer.events_evicted == 15
    events = tracer.events()
    assert len(events) == 10
    assert [event.eid for event in events] == list(range(16, 26))
    assert tracer.get(1) is None  # evicted
    assert tracer.get(25) is not None


def test_causal_slice_walks_ancestry_with_limit():
    tracer = make_tracer()
    chain = [tracer.emit("fault", node="n1")]
    for _ in range(99):
        chain.append(tracer.emit("fault", node="n1", parents=(chain[-1],)))
    full = tracer.causal_slice(chain[10])
    assert [event.eid for event in full] == chain[: 11]
    capped = tracer.causal_slice(chain[-1], limit=50)
    assert len(capped) == 50
    # BFS from the target: the slice is the 50 nearest ancestors
    assert capped[-1].eid == chain[-1]
    assert all(a.eid < b.eid for a, b in zip(capped, capped[1:]))


def test_causal_slice_tolerates_evicted_parents():
    tracer = make_tracer(ring_size=5)
    chain = [tracer.emit("fault", node="n1")]
    for _ in range(20):
        chain.append(tracer.emit("fault", node="n1", parents=(chain[-1],)))
    tail = tracer.causal_slice(chain[-1], limit=50)
    assert 0 < len(tail) <= 5


def test_unknown_monitor_name_rejected():
    from repro.trace import build_monitors
    from repro.trace.monitors import MONITORS

    with pytest.raises(ValueError, match="unknown monitor"):
        build_monitors(("no_such_monitor",))
    assert build_monitors(()) == []
    assert len(build_monitors("all")) == len(MONITORS)


def test_event_kind_catalog_covers_emitted_kinds():
    # every kind the instrumentation emits in a real run is cataloged
    from repro.config import TraceConfig
    from repro.harness.common import build_kv_system, run_kv_batch

    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=3, n_cohorts=3, trace=TraceConfig(monitors="all")
    )
    run_kv_batch(rt, driver, spec, 20, read_fraction=0.5, concurrency=2)
    rt.quiesce()
    seen = {event.kind for event in rt.tracer.events()}
    assert seen  # the run actually traced something
    assert seen <= set(EVENT_KINDS)


def test_disabled_traceconfig_leaves_runtime_untraced():
    from repro import Runtime
    from repro.config import TraceConfig as TC

    rt = Runtime(seed=1, trace=TC(enabled=False))
    assert rt.tracer is None
    assert rt.network.tracer is None
