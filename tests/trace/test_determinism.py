"""Trace determinism: tracing is pure observation of a seeded run.

Three pins:

- same seed => byte-identical JSONL export across two runs;
- the export is also identical across kernel ``compact_threshold``
  settings (the lazy-cancel compaction must not reorder what the
  tracer observes);
- enabling tracing does not change what the run computes (ledger
  digests with and without tracing agree).
"""

import os

from repro.config import TraceConfig
from repro.harness.common import build_kv_system, run_kv_batch
from repro.perf.report import ledger_digest


def _traced_run(tmp_path, tag, seed=77, compact_threshold=None, trace=True):
    config = (
        TraceConfig(monitors="all", export_path=str(tmp_path / f"{tag}.jsonl"))
        if trace
        else None
    )
    rt, _kv, _clients, driver, spec = build_kv_system(
        seed=seed, n_cohorts=3, trace=config
    )
    if compact_threshold is not None:
        rt.sim.compact_threshold = compact_threshold
    run_kv_batch(rt, driver, spec, 60, read_fraction=0.5, concurrency=2)
    rt.quiesce()
    if rt.tracer is not None:
        rt.tracer.maybe_export()
    return rt


def _export_bytes(tmp_path, tag):
    with open(tmp_path / f"{tag}.jsonl", "rb") as handle:
        return handle.read()


def test_same_seed_byte_identical_jsonl(tmp_path):
    _traced_run(tmp_path, "a")
    _traced_run(tmp_path, "b")
    first = _export_bytes(tmp_path, "a")
    assert first == _export_bytes(tmp_path, "b")
    assert len(first) > 0


def test_jsonl_identical_across_compact_threshold(tmp_path):
    # threshold 0 never compacts (pre-optimization lazy-cancel ordering);
    # threshold 1 compacts as aggressively as possible.  The trace must
    # not be able to tell them apart.
    eager = _traced_run(tmp_path, "eager", compact_threshold=1)
    lazy = _traced_run(tmp_path, "lazy", compact_threshold=0)
    assert eager.sim.heap_compactions > 0
    assert lazy.sim.heap_compactions == 0
    assert _export_bytes(tmp_path, "eager") == _export_bytes(tmp_path, "lazy")


def test_tracing_does_not_perturb_the_run(tmp_path):
    traced = _traced_run(tmp_path, "traced")
    untraced = _traced_run(tmp_path, "untraced", trace=False)
    assert untraced.tracer is None
    assert ledger_digest(traced) == ledger_digest(untraced)
    assert traced.sim.events_processed == untraced.sim.events_processed


def test_different_seed_different_trace(tmp_path):
    _traced_run(tmp_path, "s77", seed=77)
    _traced_run(tmp_path, "s78", seed=78)
    assert _export_bytes(tmp_path, "s77") != _export_bytes(tmp_path, "s78")


def test_export_is_valid_jsonl(tmp_path):
    from repro.trace.export import read_jsonl

    rt = _traced_run(tmp_path, "valid")
    events = read_jsonl(os.fspath(tmp_path / "valid.jsonl"))
    assert len(events) == len(rt.tracer.events())
    eids = [event.eid for event in events]
    assert eids == sorted(eids)
    # round-trip: parsing the export reproduces each event's JSON line
    for parsed, original in zip(events, rt.tracer.events()):
        assert parsed.to_json_line() == original.to_json_line()
