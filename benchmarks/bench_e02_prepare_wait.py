"""Experiment E2: Prepare-time force waits vs flush interval (section 3.7).

Regenerates the E2 table of EXPERIMENTS.md.
"""

from repro.harness import e02_prepare_wait

from helpers import run_experiment


def test_e02_prepare_wait(benchmark):
    result = run_experiment(benchmark, e02_prepare_wait)
    assert result.rows, "experiment produced no rows"
