#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the archived tables in benchmarks/results/.

Run ``pytest benchmarks/ --benchmark-only`` first to refresh the tables,
then ``python benchmarks/generate_experiments_md.py``.

``--check`` compares instead of writing and exits non-zero when
EXPERIMENTS.md is stale relative to benchmarks/results/ -- CI runs this so
the committed document can never drift from the archived tables.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

PREAMBLE = """\
# EXPERIMENTS — paper claims vs. measured results

The PODC '88 paper has no empirical evaluation section ("we will be able to
run experiments about system performance when our implementation is
complete" — section 6), so the experiment set below reproduces **every
quantitative claim** the paper makes, each against the baselines the paper
itself names.  DESIGN.md section 2 maps each experiment to the modules and
bench target that regenerate it; this file records the paper's claim next
to what our implementation measures.

Time units are simulated: the network's one-way LAN delay is 1.0 (+U[0,0.2]
jitter), so a round trip is ~2.2.  Every run is deterministic given its
seed.  Regenerate any table with its bench target, e.g.:

    pytest benchmarks/bench_e01_call_overhead.py --benchmark-only -s

All tables below are verbatim output of `pytest benchmarks/ --benchmark-only`
(archived under `benchmarks/results/`).

## Verdict summary

| Exp | Claim (section) | Reproduced? | Shape observed |
|-----|-----------------|-------------|----------------|
| E1 | calls cost the same as unreplicated (3.7) | yes | latency flat 2.2 across n=1..7, = unreplicated; 2 sync msgs/call |
| E2 | prepares usually need no force wait (3.7) | yes | wait fraction 0 with think time or eager flush; 1.0 with lazy flush |
| E3 | replication beats stable storage iff comm < disk (3.7) | yes | crossover exactly at the ~2.2 round trip |
| E4 | 1 round (+1 msg) vs virtual partitions' 3 phases (4.1, 5) | yes | VR O(n) msgs vs VP 4(n-1)+n(n-1); VR 6 vs VP 14 msgs at n=3 |
| E5 | fewer messages than voting for writes (5) | yes | writes: 6.95 vs 8-12; pure reads: read-one voting wins, as the paper concedes |
| E6 | majority availability vs write-all voting (4.2, 5) | yes | hardened VR ≈ majority voting >> write-all; volatile VR shows the 4.2 catastrophe exposure |
| E7 | viewstamps avoid view-change aborts (1, 5, 6) | yes | 0 prepare refusals vs 28 under the virtual-partitions rule; force-on-call = 0 refusals at ~1.8x call latency |
| E8 | no split brain; 1SR (1, 4.1) | yes | 5 seeded partition storms: money conserved, zero 1SR violations |
| E9 | psets stay small; Isis grows unboundedly (5) | yes | VR flat ~133 B/msg; Isis 68 -> 1260 B/msg over 40 txns |
| E10 | subactions retry instead of aborting (3.6) | yes | abort rate 0.45 -> 0.05; extra work only on actual view changes |
| E11 | catastrophe stalls, never corrupts (4.2) | yes | volatile: stalls by design; UPS gstate: recovers with state intact |
| E12 | unilateral edits avoid needless view changes (4.1) | yes | 13 view changes -> 0, absorbed by 9 cheap view-edit records |
| E13 | pair survives one failure; VR generalizes (5, 6) | yes | at 2 failures: vr3 16/60 (stalls, by majority), vr5 58/60, pair 41/60 (dead after) |
| E14 | component microbenchmarks | n/a | see `pytest benchmarks/bench_e14_micro.py --benchmark-only` |
| E15 | ablations: ordered managers halve view-change traffic; detector tuning (4.1) | yes | 8 vs 16 manager rounds, 50 vs 100 messages for the same 4 useful view changes |
| E16 | liveness under lossy networks: adaptive detection vs fixed timeouts (beyond the paper) | n/a (extension) | LOSSY: adaptive wins both axes (avail 0.89 vs 0.88, mean convergence 21.9 vs 25.6); storms: avail 0.82 vs 0.79 |
| E17 | transactions span many groups; each participant validates its own viewstamps (3.3) | yes | clean speedup 1.0/1.9/3.0/6.0 at 1/2/4/8 shards; a single-shard view change aborts only shard-touching txns (elsewhere 0 at 2-4 shards) |
| E18 | buffer batching: speedy delivery vs small numbers of messages (3.7) | yes | batching cuts msgs/txn 23.7 -> 11.6-13.1 (clean/viewchange), 33.1 -> 24.1 (lossy); state digest byte-identical to unbatched on every schedule |
| E19 | read serving path: leases, backup reads, client caches (beyond the paper; 3.7 prices reads as calls) | n/a (extension) | 90%-read zipfian open loop: leased reads 4.6x mean / 7.2x p99 faster than the full call path, cache 9.7x mean; backup staleness <= one heartbeat; state digest byte-identical across all serving configs (`python -m repro.reads.gate`) |
| E20 | geo-replication: placement, cross-region failover, region faults (beyond the paper; 1 and 4.1 assume partitions and cofailing links) | n/a (extension) | one-shard-per-DC commits 3.7x faster than spread placement (22.8 vs 84.1); every placement's cross-region failover meets the 525 adaptive-timeout bound; a partitioned region's leased reads stop 13.1 after the cut, long before the majority's new primary commits (+313.8); state digest byte-identical to the flat network (`python -m repro.geo.gate`) |
| E21 | cohort scaling: gossip heartbeats, ack trees, witness replicas (beyond the paper; 2 sizes groups at "three or five") | n/a (extension) | all-on cuts primary msgs/interval 7.7x at n=100 (256.0 -> 33.2, mean load 199.3 -> 7.1) with failover 50 -> 70; every cell n=5..100 commits its full load and re-forms after a primary crash; `scale=None` and all-off byte-identical schedules, armed states byte-identical to baseline (`python -m repro.scale.gate`) |

Notes on calibration: absolute numbers depend on the simulated link and
timeout parameters (see `repro/config.py`); the claims are about *shape* —
who wins, by what factor, where crossovers sit — and every shape above
matches the paper's argument.  Known deviations from the paper's text are
documented in DESIGN.md ("Key design decisions" and the per-system
substitution notes).

---

# Measured tables
"""


def render() -> str:
    sections = [PREAMBLE]
    for index in list(range(1, 14)) + [15, 16, 17, 18, 19, 20, 21]:
        path = RESULTS / f"e{index}.txt"
        if not path.exists():
            sections.append(f"\n## E{index}\n\n(missing: run the bench first)\n")
            continue
        body = path.read_text().rstrip()
        sections.append(f"\n```\n{body}\n```\n")
    return "\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if EXPERIMENTS.md is stale instead of rewriting it",
    )
    args = parser.parse_args(argv)
    out = ROOT / "EXPERIMENTS.md"
    content = render()
    if args.check:
        current = out.read_text() if out.exists() else ""
        if current != content:
            print(
                f"{out} is stale relative to {RESULTS}/; regenerate with "
                "`python benchmarks/generate_experiments_md.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{out} is up to date")
        return 0
    out.write_text(content)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
