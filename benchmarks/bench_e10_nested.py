"""Experiment E10: Nested transactions vs top-level aborts (section 3.6).

Regenerates the E10 table of EXPERIMENTS.md.
"""

from repro.harness import e10_nested

from helpers import run_experiment


def test_e10_nested(benchmark):
    result = run_experiment(benchmark, e10_nested)
    assert result.rows, "experiment produced no rows"
