"""Experiment E7: Transaction loss across view changes (sections 1, 5, 6).

Regenerates the E7 table of EXPERIMENTS.md.
"""

from repro.harness import e07_viewchange_loss

from helpers import run_experiment


def test_e07_viewchange_loss(benchmark):
    result = run_experiment(benchmark, e07_viewchange_loss)
    assert result.rows, "experiment produced no rows"
