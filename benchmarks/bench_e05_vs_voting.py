"""Experiment E5: Messages per operation vs voting (section 5).

Regenerates the E5 table of EXPERIMENTS.md.
"""

from repro.harness import e05_vs_voting

from helpers import run_experiment


def test_e05_vs_voting(benchmark):
    result = run_experiment(benchmark, e05_vs_voting)
    assert result.rows, "experiment produced no rows"
