"""Experiment E6: Write availability under churn (sections 4.2, 5).

Regenerates the E6 table of EXPERIMENTS.md.
"""

from repro.harness import e06_availability

from helpers import run_experiment


def test_e06_availability(benchmark):
    result = run_experiment(benchmark, e06_availability)
    assert result.rows, "experiment produced no rows"
