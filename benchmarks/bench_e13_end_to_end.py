"""Experiment E13: End-to-end completion vs failures incl. pair (sections 5, 6).

Regenerates the E13 table of EXPERIMENTS.md.
"""

from repro.harness import e13_end_to_end

from helpers import run_experiment


def test_e13_end_to_end(benchmark):
    result = run_experiment(benchmark, e13_end_to_end)
    assert result.rows, "experiment produced no rows"
