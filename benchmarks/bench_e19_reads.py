"""Experiment E19: the read serving path vs the paper's full call path.

Regenerates the E19 table of EXPERIMENTS.md.
"""

from repro.harness import e19_reads

from helpers import run_experiment


def test_e19_reads(benchmark):
    result = run_experiment(benchmark, e19_reads)
    assert result.rows, "experiment produced no rows"
    by_condition = {row[0]: row for row in result.rows}
    # The performance half of the claim: leased reads must beat the full
    # transactional path on the read-dominant workload (column 5 is the
    # mean-latency speedup vs baseline).
    assert by_condition["leases"][5] > 1.5, (
        f"leased reads did not beat the call path: {by_condition['leases']}"
    )
    # The staleness half: backup reads stay under the configured bound.
    from repro.config import ReadConfig

    assert by_condition["backup"][8] <= ReadConfig().default_max_staleness, (
        f"backup served a read past the staleness bound: "
        f"{by_condition['backup']}"
    )
