"""Experiment E21: cohort scaling -- gossip, ack trees, witnesses at n=100.

Regenerates the E21 table of EXPERIMENTS.md.
"""

from repro.harness import e21_cohort_scale

from helpers import run_experiment


def test_e21_cohort_scale(benchmark):
    result = run_experiment(benchmark, e21_cohort_scale)
    assert result.rows, "experiment produced no rows"
    by_cell = {(row[0], row[1]): row for row in result.rows}
    largest = max(row[0] for row in result.rows)
    txns = result.rows[0][7]
    # (a) every cell formed a post-crash view and committed its full load.
    for (n, mode), row in by_cell.items():
        assert row[7] == txns, f"n={n} {mode} lost writes: {row}"
        assert row[5] != "inf", f"n={n} {mode} never re-formed: {row}"
    # (b) the headline claim: all-on cuts the primary's per-interval
    # message load at least 5x at the largest size measured.
    cut = float(by_cell[(largest, "all")][4].rstrip("x"))
    assert cut >= 5.0, f"all-on primary cut only {cut}x at n={largest}"
    # (c) "sustained" verdict made it into the notes.
    assert "sustained" in result.notes, result.notes
