"""Experiment E14: component microbenchmarks.

Throughput of the building blocks -- viewstamp algebra, the communication
buffer, the lock manager, the simulation kernel, and the network -- so
regressions in the substrate are visible independently of protocol-level
simulation studies.
"""

from repro.core.buffer import CommunicationBuffer
from repro.core.events import Aborted
from repro.core.viewstamp import History, ViewId, Viewstamp, compatible, vs_max
from repro.net.link import LinkModel
from repro.net.messages import Message
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.node import Actor, Node
from repro.txn.ids import Aid
from repro.txn.locks import LockManager
from repro.txn.objects import READ, WRITE, ObjectStore
from repro.txn.pset import PSet

VID = ViewId(3, 0)


def test_viewstamp_ordering(benchmark):
    stamps = [Viewstamp(ViewId(i % 7, i % 3), i) for i in range(200)]

    def run():
        return max(stamps), min(stamps), sorted(stamps)[100]

    benchmark(run)


def test_history_knows_and_compatible(benchmark):
    history = History([Viewstamp(ViewId(i, 0), 50) for i in range(1, 20)])
    pset = PSet()
    for i in range(1, 20):
        pset.add("g", Viewstamp(ViewId(i, 0), 25))

    def run():
        assert compatible(pset.pairs(), "g", history)
        return vs_max(pset.pairs(), "g")

    benchmark(run)


def test_buffer_add_and_ack(benchmark):
    sim = Simulator()

    def run():
        buffer = CommunicationBuffer(
            viewid=VID,
            backups=(1, 2),
            configuration_size=3,
            send=lambda mid, msg: None,
            set_timer=lambda delay, fn, *a: sim.schedule(delay, fn, *a),
            on_force_failure=lambda: None,
            force_timeout=1000.0,
        )
        from repro.core.messages import BufferAckMsg

        for i in range(200):
            vs = buffer.add(Aborted(aid=Aid("g", VID, i)))
            buffer.on_ack(BufferAckMsg(viewid=VID, acked_ts=vs.ts, mid=1))
        return buffer.timestamp

    benchmark(run)


def test_lock_acquire_release(benchmark):
    def run():
        store = ObjectStore()
        for i in range(20):
            store.create(f"x{i}", 0)
        locks = LockManager(store)
        for txn in range(30):
            aid = f"t{txn}"
            for i in range(5):
                locks.acquire(f"x{(txn + i) % 20}", aid, READ)
            locks.acquire(f"x{txn % 20}", aid, WRITE)
            locks.record_write(f"x{txn % 20}", aid, txn)
            locks.release_reads(aid)
            locks.install(aid)
        return store.get("x0").version

    benchmark(run)


def test_sim_kernel_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 5000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count["n"]

    benchmark(run)


def test_network_send_deliver(benchmark):
    import dataclasses

    @dataclasses.dataclass
    class Ping(Message):
        n: int = 0

    class Sink(Actor):
        def __init__(self, node, address, network):
            super().__init__(node, address)
            self.count = 0
            network.register(self)

        def handle_message(self, message, source):
            self.count += 1

    def run():
        sim = Simulator()
        net = Network(sim, link=LinkModel(base_delay=1.0, jitter=0.5))
        a = Sink(Node(sim, "na"), "a", net)
        b = Sink(Node(sim, "nb"), "b", net)
        for i in range(2000):
            net.send("a", "b", Ping(n=i))
        sim.run()
        return b.count

    benchmark(run)


def test_end_to_end_txn_throughput(benchmark):
    """Whole-stack benchmark: transactions/second of simulated work."""
    from repro.harness.common import build_kv_system, run_kv_batch

    def run():
        rt, _kv, _clients, driver, spec = build_kv_system(seed=1414, n_cohorts=3)
        stats = run_kv_batch(rt, driver, spec, 50, read_fraction=0.5)
        assert stats.committed == 50
        return rt.sim.events_processed

    benchmark(run)
