"""Experiment E15: ablations of manager ordering and failure-detector tuning.

Regenerates the E15 table of EXPERIMENTS.md.
"""

from repro.harness import e15_ablations

from helpers import run_experiment


def test_e15_ablations(benchmark):
    result = run_experiment(benchmark, e15_ablations)
    assert result.rows, "experiment produced no rows"
