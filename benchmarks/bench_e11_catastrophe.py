"""Experiment E11: Catastrophes and stable-storage hardening (section 4.2).

Regenerates the E11 table of EXPERIMENTS.md.
"""

from repro.harness import e11_catastrophe

from helpers import run_experiment


def test_e11_catastrophe(benchmark):
    result = run_experiment(benchmark, e11_catastrophe)
    assert result.rows, "experiment produced no rows"
