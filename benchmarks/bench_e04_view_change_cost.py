"""Experiment E4: View change cost vs virtual partitions (sections 4.1, 5).

Regenerates the E4 table of EXPERIMENTS.md.
"""

from repro.harness import e04_view_change_cost

from helpers import run_experiment


def test_e04_view_change_cost(benchmark):
    result = run_experiment(benchmark, e04_view_change_cost)
    assert result.rows, "experiment produced no rows"
