"""Experiment E20: geo-replication -- placement, failover, region faults.

Regenerates the E20 table of EXPERIMENTS.md.
"""

from repro.harness import e20_geo

from helpers import run_experiment


def test_e20_geo(benchmark):
    result = run_experiment(benchmark, e20_geo)
    assert result.rows, "experiment produced no rows"
    by_condition = {row[0]: row for row in result.rows}
    # (a) every placement's cross-region failover lands inside the
    # adaptive-timeout bound.
    for condition, row in by_condition.items():
        if condition.startswith("(a) failover"):
            assert row[4].endswith("met"), f"failover bound missed: {row}"
    # (b) the locality claim: one-shard-per-DC sharding beats spread
    # placement on single-shard commit latency.
    spread = float(by_condition["(b) 2PC latency [spread]"][2])
    local = float(by_condition["(b) 2PC latency [single_dc]"][2])
    assert local < spread, (
        f"locality did not win: single_dc {local} vs spread {spread}"
    )
    # (c) the fenced minority's leased reads expired before the surviving
    # majority's new primary committed.
    assert "leases stopped" in by_condition["(c) region partition"][4]
