"""Experiment E17: scale-out by sharding over many replica groups.

Regenerates the E17 table of EXPERIMENTS.md.
"""

from repro.harness import e17_sharding

from helpers import run_experiment


def test_e17_sharding(benchmark):
    result = run_experiment(benchmark, e17_sharding)
    assert result.rows, "experiment produced no rows"
