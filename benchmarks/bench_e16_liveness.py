"""Experiment E16: liveness under lossy networks, adaptive vs fixed.

Regenerates the E16 table of EXPERIMENTS.md.
"""

from repro.harness import e16_liveness

from helpers import run_experiment


def test_e16_liveness(benchmark):
    result = run_experiment(benchmark, e16_liveness)
    assert result.rows, "experiment produced no rows"
