"""Experiment E18: batched & pipelined replication vs the unbatched path.

Regenerates the E18 table of EXPERIMENTS.md.
"""

from repro.harness import e18_batching

from helpers import run_experiment


def test_e18_batching(benchmark):
    result = run_experiment(benchmark, e18_batching)
    assert result.rows, "experiment produced no rows"
    # The safety half of the claim is binary: every config on every
    # schedule must reproduce the unbatched run's final state.
    assert all(row[-1] == "yes" for row in result.rows), (
        "a batched run diverged from the unbatched state digest"
    )
