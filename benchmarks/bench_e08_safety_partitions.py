"""Experiment E8: Safety under partitions (sections 1, 4.1).

Regenerates the E8 table of EXPERIMENTS.md.
"""

from repro.harness import e08_safety_partitions

from helpers import run_experiment


def test_e08_safety_partitions(benchmark):
    result = run_experiment(benchmark, e08_safety_partitions)
    assert result.rows, "experiment produced no rows"
