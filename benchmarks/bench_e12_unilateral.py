"""Experiment E12: Unilateral view edits vs full view changes (section 4.1).

Regenerates the E12 table of EXPERIMENTS.md.
"""

from repro.harness import e12_unilateral

from helpers import run_experiment


def test_e12_unilateral(benchmark):
    result = run_experiment(benchmark, e12_unilateral)
    assert result.rows, "experiment produced no rows"
