"""Experiment E1: Remote-call overhead vs group size (sections 3.7, 6).

Regenerates the E1 table of EXPERIMENTS.md.
"""

from repro.harness import e01_call_overhead

from helpers import run_experiment


def test_e01_call_overhead(benchmark):
    result = run_experiment(benchmark, e01_call_overhead)
    assert result.rows, "experiment produced no rows"
