"""Shared plumbing for the benchmark targets.

Each ``bench_eNN_*.py`` regenerates one experiment table from
EXPERIMENTS.md: the experiment runs once under pytest-benchmark (rounds=1
-- these are simulation studies, not microbenchmarks), prints its table,
and archives it under ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from a run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Run one experiment under the benchmark fixture and archive its table."""
    result = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1
    )
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{result.exp_id.lower()}.txt"
    out.write_text(text + "\n")
    return result
