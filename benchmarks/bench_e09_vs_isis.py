"""Experiment E9: Bytes per message vs Isis piggybacking (section 5).

Regenerates the E9 table of EXPERIMENTS.md.
"""

from repro.harness import e09_vs_isis

from helpers import run_experiment


def test_e09_vs_isis(benchmark):
    result = run_experiment(benchmark, e09_vs_isis)
    assert result.rows, "experiment produced no rows"
