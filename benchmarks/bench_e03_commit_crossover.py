"""Experiment E3: Commit force crossover vs stable storage (section 3.7).

Regenerates the E3 table of EXPERIMENTS.md.
"""

from repro.harness import e03_commit_crossover

from helpers import run_experiment


def test_e03_commit_crossover(benchmark):
    result = run_experiment(benchmark, e03_commit_crossover)
    assert result.rows, "experiment produced no rows"
